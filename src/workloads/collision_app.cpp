#include "workloads/collision_app.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#include "pilot/pi.hpp"
#include "util/bytebuf.hpp"

namespace workloads::collisions {

namespace {

std::vector<std::uint8_t> encode_result(const QueryResult& q) {
  util::ByteWriter w;
  w.u64(q.total);
  auto put_map = [&](const std::map<int, std::uint64_t>& m) {
    w.u32(static_cast<std::uint32_t>(m.size()));
    for (const auto& [k, v] : m) {
      w.i32(k);
      w.u64(v);
    }
  };
  put_map(q.by_severity);
  put_map(q.fatal_by_year);
  w.i32(q.max_vehicles);
  w.u64(q.persons_sum);
  put_map(q.by_region);
  return w.take();
}

QueryResult decode_result(const std::uint8_t* data, std::size_t n) {
  util::ByteReader r(data, n);
  QueryResult q;
  q.total = r.u64();
  auto get_map = [&](std::map<int, std::uint64_t>& m) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const int k = r.i32();
      m[k] = r.u64();
    }
  };
  get_map(q.by_severity);
  get_map(q.fatal_by_year);
  q.max_vehicles = r.i32();
  q.persons_sum = r.u64();
  get_map(q.by_region);
  return q;
}

struct AppState {
  const AppConfig* config = nullptr;
  const std::string* csv = nullptr;

  std::vector<PI_CHANNEL*> down;  // main -> worker
  std::vector<PI_CHANNEL*> up;    // worker -> main

  std::vector<std::vector<Record>> worker_records;  // per worker index

  // Outputs (written by PI_MAIN).
  double read_phase = 0.0;
  double query_phase = 0.0;
  double t_read0 = 0.0, t_read1 = 0.0, t_query1 = 0.0;
  QueryResult totals;
};

AppState g_app;

int worker(int index, void*) {
  const AppConfig& cfg = *g_app.config;
  auto& records = g_app.worker_records[static_cast<std::size_t>(index)];

  if (cfg.variant == Variant::kInstanceB) {
    // Instance B: PI_MAIN parsed the whole file; we just receive records.
    int len = 0;
    unsigned char* bytes = nullptr;
    PI_Read(g_app.down[static_cast<std::size_t>(index)], "%^b", &len, &bytes);
    records.resize(static_cast<std::size_t>(len) / sizeof(Record));
    if (len > 0) std::memcpy(records.data(), bytes, static_cast<std::size_t>(len));
    std::free(bytes);
  } else {
    // Parse our own byte range of the "file", starting from a raw offset.
    unsigned long begin = 0, end = 0;
    PI_Read(g_app.down[static_cast<std::size_t>(index)], "%lu %lu", &begin, &end);
    records = parse_chunk(*g_app.csv, begin, end);
    PI_Compute(cfg.costs.parse_cost(end - begin));
  }
  PI_Write(g_app.up[static_cast<std::size_t>(index)], "%d", 1);  // chunk ready

  for (int round = 0; round < cfg.query_rounds; ++round) {
    int query_id = 0;
    PI_Read(g_app.down[static_cast<std::size_t>(index)], "%d", &query_id);
    const QueryResult partial = run_queries(records);
    PI_Compute(cfg.costs.query_cost(records.size()));
    const auto bytes = encode_result(partial);
    PI_Write(g_app.up[static_cast<std::size_t>(index)], "%*b",
             static_cast<int>(bytes.size()), bytes.data());
  }
  return 0;
}

int app_main(int argc, char** argv) {
  const AppConfig& cfg = *g_app.config;
  const std::string& csv = *g_app.csv;
  const int w = cfg.workers;

  PI_Configure(&argc, &argv);
  g_app.down.assign(static_cast<std::size_t>(w), nullptr);
  g_app.up.assign(static_cast<std::size_t>(w), nullptr);
  g_app.worker_records.assign(static_cast<std::size_t>(w), {});
  for (int i = 0; i < w; ++i) {
    PI_PROCESS* p = PI_CreateProcess(worker, i, nullptr);
    PI_SetName(p, ("W" + std::to_string(i)).c_str());
    g_app.down[static_cast<std::size_t>(i)] = PI_CreateChannel(PI_MAIN, p);
    g_app.up[static_cast<std::size_t>(i)] = PI_CreateChannel(p, PI_MAIN);
  }
  PI_StartAll();

  const double t_read0 = PI_StartTime();

  if (cfg.variant == Variant::kInstanceB) {
    // Instance B: the whole file is read and parsed by PI_MAIN while every
    // worker sits blocked (the paper's 11-second wait).
    PI_Compute(cfg.costs.parse_cost(csv.size()));
    const auto all = parse_chunk(csv, 0, csv.size());
    const std::size_t per = all.size() / static_cast<std::size_t>(w);
    for (int i = 0; i < w; ++i) {
      const std::size_t lo = static_cast<std::size_t>(i) * per;
      const std::size_t hi =
          i == w - 1 ? all.size() : lo + per;
      PI_Write(g_app.down[static_cast<std::size_t>(i)], "%*b",
               static_cast<int>((hi - lo) * sizeof(Record)),
               reinterpret_cast<const unsigned char*>(all.data() + lo));
    }
  } else {
    // Intended plan: every worker parses its own chunk, in parallel.
    const std::size_t per = csv.size() / static_cast<std::size_t>(w);
    for (int i = 0; i < w; ++i) {
      const auto begin = static_cast<unsigned long>(static_cast<std::size_t>(i) * per);
      const auto end = static_cast<unsigned long>(
          i == w - 1 ? csv.size() : static_cast<std::size_t>(i + 1) * per);
      PI_Write(g_app.down[static_cast<std::size_t>(i)], "%lu %lu", begin, end);
    }
  }
  for (int i = 0; i < w; ++i) {
    int ready = 0;
    PI_Read(g_app.up[static_cast<std::size_t>(i)], "%d", &ready);
  }
  const double t_read1 = PI_StartTime();

  // Query phase.
  QueryResult merged;
  for (int round = 0; round < cfg.query_rounds; ++round) {
    QueryResult this_round;
    if (cfg.variant == Variant::kInstanceA) {
      // The Fig. 4 bug: write+read paired per worker serializes everything.
      for (int i = 0; i < w; ++i) {
        PI_Write(g_app.down[static_cast<std::size_t>(i)], "%d", round);
        int len = 0;
        unsigned char* bytes = nullptr;
        PI_Read(g_app.up[static_cast<std::size_t>(i)], "%^b", &len, &bytes);
        this_round.merge(decode_result(bytes, static_cast<std::size_t>(len)));
        std::free(bytes);
      }
    } else {
      // All writes first, then all reads: workers compute concurrently.
      for (int i = 0; i < w; ++i)
        PI_Write(g_app.down[static_cast<std::size_t>(i)], "%d", round);
      for (int i = 0; i < w; ++i) {
        int len = 0;
        unsigned char* bytes = nullptr;
        PI_Read(g_app.up[static_cast<std::size_t>(i)], "%^b", &len, &bytes);
        this_round.merge(decode_result(bytes, static_cast<std::size_t>(len)));
        std::free(bytes);
      }
    }
    merged = std::move(this_round);
  }
  const double t_query1 = PI_StartTime();

  g_app.read_phase = t_read1 - t_read0;
  g_app.query_phase = t_query1 - t_read1;
  g_app.t_read0 = t_read0;
  g_app.t_read1 = t_read1;
  g_app.t_query1 = t_query1;
  g_app.totals = std::move(merged);

  PI_StopMain(0);
  return 0;
}

}  // namespace

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::kFixed: return "fixed";
    case Variant::kInstanceA: return "instance-a";
    case Variant::kInstanceB: return "instance-b";
  }
  return "?";
}

const std::string& input_csv(const AppConfig& config) {
  static std::mutex mu;
  static std::map<std::pair<std::uint64_t, std::size_t>, std::string> cache;
  std::lock_guard lk(mu);
  auto& slot = cache[{config.seed, config.records}];
  if (slot.empty()) slot = to_csv(generate(config.seed, config.records));
  return slot;
}

AppStats run_app(const AppConfig& config) {
  const std::string& csv = input_csv(config);

  g_app = AppState{};
  g_app.config = &config;
  g_app.csv = &csv;

  std::vector<std::string> args = {"collision-query"};
  args.insert(args.end(), config.pilot_args.begin(), config.pilot_args.end());

  const auto t0 = std::chrono::steady_clock::now();
  pilot::RunResult run = pilot::run(args, app_main);
  const auto t1 = std::chrono::steady_clock::now();

  AppStats stats;
  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.read_phase_seconds = g_app.read_phase;
  stats.query_phase_seconds = g_app.query_phase;
  stats.t_read_begin = g_app.t_read0;
  stats.t_read_end = g_app.t_read1;
  stats.t_query_end = g_app.t_query1;
  stats.totals = std::move(g_app.totals);
  stats.oracle = run_queries(parse_chunk(csv, 0, csv.size()));
  stats.run = std::move(run);
  return stats;
}

}  // namespace workloads::collisions

// The paper's Section IV-B debugging assignment: parse a large collision
// CSV in parallel from per-worker file offsets, then answer queries in
// parallel and merge. Three variants:
//
//   kFixed     — the intended program: all workers parse their chunk
//                concurrently; each query round does all PI_Writes, then
//                all PI_Reads.
//   kInstanceA — the Fig. 4 student bug: PI_Write/PI_Read paired per worker
//                inside the loop, inadvertently serializing the query phase.
//   kInstanceB — the Fig. 5 student bug: PI_MAIN reads the whole file alone
//                (~11 s in the paper) while the workers sit blocked, then
//                ships the records out; no speedup is possible.
//
// All parsing/query work is real (the synthetic CSV is actually parsed and
// aggregated; results are cross-checked against a sequential oracle) with
// virtual costs charged per the CostModel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pilot/runtime.hpp"
#include "workloads/collisions.hpp"

namespace workloads::collisions {

enum class Variant { kFixed, kInstanceA, kInstanceB };

std::string variant_name(Variant v);

struct AppConfig {
  Variant variant = Variant::kFixed;
  int workers = 4;
  std::size_t records = 100000;
  int query_rounds = 4;
  std::uint64_t seed = 7;
  CostModel costs;
  std::vector<std::string> pilot_args;
};

struct AppStats {
  double wall_seconds = 0.0;
  double read_phase_seconds = 0.0;   ///< virtual clock, via PI_StartTime
  double query_phase_seconds = 0.0;
  // Absolute instants on the trace's clock (for zooming the visual log
  // into a phase): read phase = [t_read_begin, t_read_end], query phase =
  // [t_read_end, t_query_end].
  double t_read_begin = 0.0;
  double t_read_end = 0.0;
  double t_query_end = 0.0;
  QueryResult totals;                ///< merged across workers
  QueryResult oracle;                ///< sequential ground truth
  pilot::RunResult run;

  [[nodiscard]] bool correct() const { return totals == oracle; }
};

AppStats run_app(const AppConfig& config);

/// The CSV text for `config` (cached; excluded from timing like a file
/// already on disk).
const std::string& input_csv(const AppConfig& config);

}  // namespace workloads::collisions

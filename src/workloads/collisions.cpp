#include "workloads/collisions.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"
#include "util/prng.hpp"
#include "util/strings.hpp"

namespace workloads::collisions {

std::vector<Record> generate(std::uint64_t seed, std::size_t count) {
  util::SplitMix64 rng(seed ^ 0xC0111D0EULL);
  std::vector<Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Record r;
    r.year = static_cast<int>(1999 + rng.below(19));
    r.month = static_cast<int>(1 + rng.below(12));
    // Severity skewed like real data: fatal rare, property damage common.
    const double roll = rng.uniform();
    r.severity = roll < 0.015 ? 1 : roll < 0.35 ? 2 : 3;
    r.vehicles = static_cast<int>(1 + rng.below(4)) +
                 (rng.chance(0.02) ? static_cast<int>(rng.below(20)) : 0);
    r.persons = r.vehicles + static_cast<int>(rng.below(5));
    r.region = static_cast<int>(rng.below(13));
    r.weather = static_cast<int>(rng.below(7));
    out.push_back(r);
  }
  return out;
}

std::string to_csv(const std::vector<Record>& records) {
  std::string out = "year,month,severity,vehicles,persons,region,weather\n";
  for (const auto& r : records) {
    out += util::strprintf("%d,%d,%d,%d,%d,%d,%d\n", r.year, r.month, r.severity,
                           r.vehicles, r.persons, r.region, r.weather);
  }
  return out;
}

namespace {

bool parse_line(const char* begin, const char* end, Record* out) {
  int fields[7];
  int nfield = 0;
  const char* p = begin;
  while (p < end && nfield < 7) {
    char* next = nullptr;
    const long v = std::strtol(p, &next, 10);
    if (next == p) return false;
    fields[nfield++] = static_cast<int>(v);
    p = next;
    if (p < end && *p == ',') ++p;
  }
  if (nfield != 7) return false;
  out->year = fields[0];
  out->month = fields[1];
  out->severity = fields[2];
  out->vehicles = fields[3];
  out->persons = fields[4];
  out->region = fields[5];
  out->weather = fields[6];
  return true;
}

}  // namespace

std::vector<Record> parse_chunk(const std::string& csv, std::size_t begin,
                                std::size_t end) {
  if (begin > csv.size()) return {};
  end = std::min(end, csv.size());

  // Align the start: the first chunk skips the header line; later chunks
  // skip the partial record they landed in.
  std::size_t pos = csv.find('\n', begin);
  if (pos == std::string::npos) return {};
  ++pos;

  std::vector<Record> out;
  while (pos < csv.size() && pos <= end) {
    std::size_t eol = csv.find('\n', pos);
    if (eol == std::string::npos) eol = csv.size();
    Record r;
    if (parse_line(csv.data() + pos, csv.data() + eol, &r)) out.push_back(r);
    pos = eol + 1;
    if (pos > end) break;  // the record straddling `end` was ours to finish
  }
  return out;
}

void QueryResult::add(const Record& r) {
  ++total;
  ++by_severity[r.severity];
  if (r.severity == 1) ++fatal_by_year[r.year];
  max_vehicles = std::max(max_vehicles, r.vehicles);
  persons_sum += static_cast<std::uint64_t>(r.persons);
  ++by_region[r.region];
}

void QueryResult::merge(const QueryResult& other) {
  total += other.total;
  for (const auto& [k, v] : other.by_severity) by_severity[k] += v;
  for (const auto& [k, v] : other.fatal_by_year) fatal_by_year[k] += v;
  max_vehicles = std::max(max_vehicles, other.max_vehicles);
  persons_sum += other.persons_sum;
  for (const auto& [k, v] : other.by_region) by_region[k] += v;
}

QueryResult run_queries(const std::vector<Record>& records) {
  QueryResult q;
  for (const auto& r : records) q.add(r);
  return q;
}

}  // namespace workloads::collisions

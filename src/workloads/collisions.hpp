// Synthetic stand-in for the 316 MB Canadian automotive-collision CSV used
// by the paper's Section IV-B debugging assignment: a deterministic record
// generator, the CSV encoding, an offset-partitioned chunk parser (workers
// start mid-file and align to the next newline, like the assignment), and a
// small mergeable query engine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace workloads::collisions {

struct Record {
  int year = 0;        // 1999..2017
  int month = 0;       // 1..12
  int severity = 0;    // 1 = fatal, 2 = injury, 3 = property damage
  int vehicles = 0;    // vehicles involved
  int persons = 0;     // persons involved
  int region = 0;      // 0..12 (provinces/territories)
  int weather = 0;     // 0..6
};

/// Deterministic synthetic dataset.
std::vector<Record> generate(std::uint64_t seed, std::size_t count);

/// CSV with header line "year,month,severity,vehicles,persons,region,weather".
std::string to_csv(const std::vector<Record>& records);

/// Parse the byte range [begin, end) of a CSV buffer the way the class
/// assignment does: skip to the first newline after `begin` (unless begin
/// is 0, which skips the header instead), and keep reading past `end` to
/// finish the record that straddles it. Partitioning [0,n) into touching
/// ranges therefore parses every record exactly once.
std::vector<Record> parse_chunk(const std::string& csv, std::size_t begin,
                                std::size_t end);

/// Mergeable aggregates for the assignment's query set.
struct QueryResult {
  std::uint64_t total = 0;
  std::map<int, std::uint64_t> by_severity;
  std::map<int, std::uint64_t> fatal_by_year;
  int max_vehicles = 0;
  std::uint64_t persons_sum = 0;
  std::map<int, std::uint64_t> by_region;

  void add(const Record& r);
  void merge(const QueryResult& other);
  bool operator==(const QueryResult&) const = default;
};

QueryResult run_queries(const std::vector<Record>& records);

/// Virtual-seconds cost model: the paper's instance B spends ~11 s reading
/// 316 MB single-threaded, so the default parse rate is ~28 MB/s.
struct CostModel {
  double parse_per_byte = 1.0 / (28.0 * 1024 * 1024);
  double query_per_record = 250e-9;

  [[nodiscard]] double parse_cost(std::size_t bytes) const {
    return parse_per_byte * static_cast<double>(bytes);
  }
  [[nodiscard]] double query_cost(std::size_t records) const {
    return query_per_record * static_cast<double>(records);
  }
};

}  // namespace workloads::collisions

#include "workloads/thumbnail_app.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>

#include "pilot/pi.hpp"

namespace workloads::thumbnail {

namespace {

// Globals shared with the (C-function-pointer) work functions. One Pilot
// program runs at a time, so plain globals match Pilot's usual style.
struct AppState {
  const Config* config = nullptr;
  const std::vector<std::vector<std::uint8_t>>* files = nullptr;

  std::vector<PI_CHANNEL*> ready;   // D_i -> main
  std::vector<PI_CHANNEL*> work;    // main -> D_i
  std::vector<PI_CHANNEL*> pixels;  // D_i -> C
  PI_CHANNEL* count_to_c = nullptr; // main -> C
  PI_CHANNEL* results = nullptr;    // C -> main
  PI_BUNDLE* ready_bundle = nullptr;
  PI_BUNDLE* pixels_bundle = nullptr;

  // Outputs (written by PI_MAIN / C inside one program run).
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  std::size_t files_out = 0;
  double thumb_err_sum = 0.0;
};

AppState g_app;

int decompressor(int index, void*) {
  const Config& cfg = *g_app.config;
  for (;;) {
    PI_Write(g_app.ready[static_cast<std::size_t>(index)], "%d", index);
    int len = 0;
    unsigned char* bytes = nullptr;
    PI_Read(g_app.work[static_cast<std::size_t>(index)], "%^b", &len, &bytes);
    if (len == 0) {
      std::free(bytes);
      break;
    }
    const std::vector<std::uint8_t> jpeg(bytes, bytes + len);
    std::free(bytes);

    const Image img = decode(jpeg);
    const Image thumb = crop_and_subsample(img);
    // Decompressing + cropping + subsampling is the pipeline's dominant
    // cost; charge it against the source image size.
    PI_Compute(cfg.costs.decode_cost(img.pixel_count()));

    PI_Write(g_app.pixels[static_cast<std::size_t>(index)], "%d %d %*b",
             thumb.width, thumb.height, static_cast<int>(thumb.pixels.size()),
             thumb.pixels.data());
  }
  return 0;
}

int compressor(int, void*) {
  const Config& cfg = *g_app.config;
  int expected = 0;
  PI_Read(g_app.count_to_c, "%d", &expected);
  for (int done = 0; done < expected; ++done) {
    const int which = PI_Select(g_app.pixels_bundle);
    Image thumb;
    int len = 0;
    unsigned char* bytes = nullptr;
    PI_Read(g_app.pixels[static_cast<std::size_t>(which)], "%d %d %^b",
            &thumb.width, &thumb.height, &len, &bytes);
    thumb.pixels.assign(bytes, bytes + len);
    std::free(bytes);

    const auto jpeg = encode(thumb, cfg.quality);
    PI_Compute(cfg.costs.encode_cost(thumb.pixel_count()));

    // Reconstruction sanity: decoded thumbnail must stay close.
    g_app.thumb_err_sum += mean_abs_error(thumb, decode(jpeg));

    PI_Write(g_app.results, "%*b", static_cast<int>(jpeg.size()), jpeg.data());
  }
  return 0;
}

int app_main(int argc, char** argv) {
  const Config& cfg = *g_app.config;
  const auto& files = *g_app.files;
  const int w = cfg.workers;

  PI_Configure(&argc, &argv);

  // Rank 1 = compressor, ranks 2..w+1 = decompressors (paper's layout).
  PI_PROCESS* c_proc = PI_CreateProcess(compressor, 0, nullptr);
  PI_SetName(c_proc, "C");
  g_app.count_to_c = PI_CreateChannel(PI_MAIN, c_proc);
  g_app.results = PI_CreateChannel(c_proc, PI_MAIN);

  g_app.ready.assign(static_cast<std::size_t>(w), nullptr);
  g_app.work.assign(static_cast<std::size_t>(w), nullptr);
  g_app.pixels.assign(static_cast<std::size_t>(w), nullptr);
  for (int i = 0; i < w; ++i) {
    PI_PROCESS* d = PI_CreateProcess(decompressor, i, nullptr);
    PI_SetName(d, ("D" + std::to_string(i)).c_str());
    g_app.ready[static_cast<std::size_t>(i)] = PI_CreateChannel(d, PI_MAIN);
    g_app.work[static_cast<std::size_t>(i)] = PI_CreateChannel(PI_MAIN, d);
    g_app.pixels[static_cast<std::size_t>(i)] = PI_CreateChannel(d, c_proc);
  }
  g_app.ready_bundle =
      PI_CreateBundle(PI_SELECT_B, g_app.ready.data(), w);
  g_app.pixels_bundle =
      PI_CreateBundle(PI_SELECT_B, g_app.pixels.data(), w);

  PI_StartAll();

  PI_Write(g_app.count_to_c, "%d", static_cast<int>(files.size()));

  // Ship each file to the next available decompressor.
  for (const auto& jpeg : files) {
    PI_Compute(cfg.costs.io_cost(jpeg.size()));  // "read from disk"
    g_app.bytes_in += jpeg.size();
    const int which = PI_Select(g_app.ready_bundle);
    int token = 0;
    PI_Read(g_app.ready[static_cast<std::size_t>(which)], "%d", &token);
    PI_Write(g_app.work[static_cast<std::size_t>(which)], "%*b",
             static_cast<int>(jpeg.size()), jpeg.data());
  }
  // Stop tokens.
  for (int i = 0; i < w; ++i) {
    const int which = PI_Select(g_app.ready_bundle);
    int token = 0;
    PI_Read(g_app.ready[static_cast<std::size_t>(which)], "%d", &token);
    PI_Write(g_app.work[static_cast<std::size_t>(which)], "%*b", 0,
             static_cast<const unsigned char*>(nullptr));
  }

  // Collect thumbnails and "write them to disk".
  for (std::size_t f = 0; f < files.size(); ++f) {
    int len = 0;
    unsigned char* bytes = nullptr;
    PI_Read(g_app.results, "%^b", &len, &bytes);
    g_app.bytes_out += static_cast<std::size_t>(len);
    ++g_app.files_out;
    PI_Compute(cfg.costs.io_cost(static_cast<std::size_t>(len)));
    std::free(bytes);
  }

  PI_StopMain(0);
  return 0;
}

}  // namespace

const std::vector<std::vector<std::uint8_t>>& input_files(const Config& config) {
  static std::mutex mu;
  static std::map<std::tuple<int, int, int, std::uint64_t>,
                  std::vector<std::vector<std::uint8_t>>>
      cache;
  std::lock_guard lk(mu);
  auto& slot = cache[{config.files, config.image_size, config.quality, config.seed}];
  if (slot.empty() && config.files > 0) {
    slot.reserve(static_cast<std::size_t>(config.files));
    for (int f = 0; f < config.files; ++f) {
      const Image img = generate_image(config.seed + static_cast<std::uint64_t>(f),
                                       config.image_size, config.image_size);
      slot.push_back(encode(img, config.quality));
    }
  }
  return slot;
}

Stats run_app(const Config& config) {
  const auto& files = input_files(config);

  g_app = AppState{};
  g_app.config = &config;
  g_app.files = &files;

  std::vector<std::string> args = {"thumbnail"};
  args.insert(args.end(), config.pilot_args.begin(), config.pilot_args.end());

  const auto t0 = std::chrono::steady_clock::now();
  pilot::RunResult run = pilot::run(args, app_main);
  const auto t1 = std::chrono::steady_clock::now();

  Stats stats;
  stats.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.files_out = g_app.files_out;
  stats.bytes_in = g_app.bytes_in;
  stats.bytes_out = g_app.bytes_out;
  stats.thumb_mean_error =
      g_app.files_out ? g_app.thumb_err_sum / static_cast<double>(g_app.files_out)
                      : 0.0;
  stats.run = std::move(run);
  return stats;
}

}  // namespace workloads::thumbnail

// The paper's demonstration application (Section III-D): a JPEG thumbnail
// pipeline with PI_MAIN doing all "disk" I/O, multiple decompressor
// processes D_i (the scalable, compute-heavy stage), and one compressor C.
//
//   PI_MAIN --files--> D_i --pixels--> C --thumbnails--> PI_MAIN
//
// Work is handed to "the next available worker": each D announces itself on
// a ready channel and PI_MAIN selects among them. Input files are synthetic
// tinyjpeg images (substitute for the course's >1000 real JPEGs); all
// compute charges the simulated machine so the Section III-E overhead table
// reproduces on any host.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pilot/runtime.hpp"
#include "workloads/tinyjpeg.hpp"

namespace workloads::thumbnail {

struct Config {
  int files = 100;
  int workers = 5;  ///< decompressor count (the paper scales 5 -> 10)
  int image_size = 64;
  int quality = 75;
  std::uint64_t seed = 42;
  CostModel costs;
  /// Extra Pilot command-line arguments (-pisvc=..., -pisim-..., -piout=...).
  std::vector<std::string> pilot_args;
};

struct Stats {
  double wall_seconds = 0.0;  ///< around the whole Pilot program
  std::size_t files_out = 0;
  std::size_t bytes_in = 0;
  std::size_t bytes_out = 0;
  double thumb_mean_error = 0.0;  ///< reconstruction sanity metric
  pilot::RunResult run;
};

/// Run the pipeline once. Thread-compatible with the rest of the suite but
/// not reentrant (one Pilot program per process at a time).
Stats run_app(const Config& config);

/// The generated input set for `config` (cached across runs; generation is
/// excluded from timing, like pre-existing files on disk).
const std::vector<std::vector<std::uint8_t>>& input_files(const Config& config);

}  // namespace workloads::thumbnail

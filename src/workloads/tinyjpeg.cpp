#include "workloads/tinyjpeg.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>

#include "util/bytebuf.hpp"
#include "util/prng.hpp"

namespace workloads {

namespace {

constexpr int kBlock = 8;
constexpr std::array<char, 4> kMagic = {'T', 'J', '1', '\0'};

// Zigzag scan order for an 8x8 block.
constexpr std::array<int, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

// Base quantization table (JPEG Annex K luminance, the classic one).
constexpr std::array<int, 64> kBaseQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,  12, 12, 14, 19, 26,  58,  60,  55,
    14, 13, 16, 24, 40,  57,  69,  56,  14, 17, 22, 29, 51,  87,  80,  62,
    18, 22, 37, 56, 68,  109, 103, 77,  24, 35, 55, 64, 81,  104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99};

std::array<double, 64> quant_table(int quality) {
  quality = std::clamp(quality, 1, 100);
  // libjpeg's quality-to-scale mapping.
  const double scale = quality < 50 ? 5000.0 / quality : 200.0 - 2.0 * quality;
  std::array<double, 64> q{};
  for (int i = 0; i < 64; ++i) {
    double v = std::floor((kBaseQuant[static_cast<std::size_t>(i)] * scale + 50.0) / 100.0);
    q[static_cast<std::size_t>(i)] = std::clamp(v, 1.0, 255.0);
  }
  return q;
}

// Naive 2D DCT-II / DCT-III on an 8x8 block. O(N^4) per block is fine at
// this scale and keeps the transform obviously correct.
void dct_forward(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  constexpr double pi = std::numbers::pi;
  for (int u = 0; u < kBlock; ++u) {
    for (int v = 0; v < kBlock; ++v) {
      double sum = 0.0;
      for (int x = 0; x < kBlock; ++x)
        for (int y = 0; y < kBlock; ++y)
          sum += in[x][y] * std::cos((2 * x + 1) * u * pi / 16.0) *
                 std::cos((2 * y + 1) * v * pi / 16.0);
      const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      out[u][v] = 0.25 * cu * cv * sum;
    }
  }
}

void dct_inverse(const double in[kBlock][kBlock], double out[kBlock][kBlock]) {
  constexpr double pi = std::numbers::pi;
  for (int x = 0; x < kBlock; ++x) {
    for (int y = 0; y < kBlock; ++y) {
      double sum = 0.0;
      for (int u = 0; u < kBlock; ++u)
        for (int v = 0; v < kBlock; ++v) {
          const double cu = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          const double cv = v == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
          sum += cu * cv * in[u][v] * std::cos((2 * x + 1) * u * pi / 16.0) *
                 std::cos((2 * y + 1) * v * pi / 16.0);
        }
      out[x][y] = 0.25 * sum;
    }
  }
}

// Varint zigzag coding for signed coefficients.
void put_signed(util::ByteWriter& w, int v) {
  std::uint32_t u = static_cast<std::uint32_t>((v << 1) ^ (v >> 31));
  while (u >= 0x80) {
    w.u8(static_cast<std::uint8_t>(u) | 0x80);
    u >>= 7;
  }
  w.u8(static_cast<std::uint8_t>(u));
}

int get_signed(util::ByteReader& r) {
  std::uint32_t u = 0;
  int shift = 0;
  for (;;) {
    const std::uint8_t b = r.u8();
    u |= static_cast<std::uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift > 28) throw util::IoError("tinyjpeg: varint overflow");
  }
  return static_cast<int>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace

Image generate_image(std::uint64_t seed, int width, int height) {
  if (width <= 0 || height <= 0)
    throw util::UsageError("generate_image: non-positive dimensions");
  util::SplitMix64 rng(seed);
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.resize(img.pixel_count());

  // Smooth base: two gradients with random orientation.
  const double gx = rng.uniform(-1, 1), gy = rng.uniform(-1, 1);
  const double base = rng.uniform(60, 180);

  // Soft blobs.
  struct Blob {
    double cx, cy, r, amp;
  };
  std::vector<Blob> blobs;
  const int nblobs = static_cast<int>(3 + rng.below(6));
  for (int i = 0; i < nblobs; ++i) {
    blobs.push_back(Blob{rng.uniform(0, width), rng.uniform(0, height),
                         rng.uniform(width / 16.0, width / 3.0),
                         rng.uniform(-80, 80)});
  }

  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double v = base + gx * 40.0 * x / width + gy * 40.0 * y / height;
      for (const auto& b : blobs) {
        const double dx = x - b.cx, dy = y - b.cy;
        v += b.amp * std::exp(-(dx * dx + dy * dy) / (2 * b.r * b.r));
      }
      img.pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                 static_cast<std::size_t>(x)] =
          static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

std::vector<std::uint8_t> encode(const Image& img, int quality) {
  if (img.width <= 0 || img.height <= 0 || img.pixels.size() != img.pixel_count())
    throw util::UsageError("tinyjpeg::encode: malformed image");
  const auto q = quant_table(quality);

  util::ByteWriter w;
  w.raw(kMagic.data(), kMagic.size());
  w.i32(img.width);
  w.i32(img.height);
  w.u8(static_cast<std::uint8_t>(std::clamp(quality, 1, 100)));

  double in[kBlock][kBlock];
  double freq[kBlock][kBlock];
  for (int by = 0; by < img.height; by += kBlock) {
    for (int bx = 0; bx < img.width; bx += kBlock) {
      // Load block (edge blocks replicate the border pixel).
      for (int y = 0; y < kBlock; ++y)
        for (int x = 0; x < kBlock; ++x) {
          const int sx = std::min(bx + x, img.width - 1);
          const int sy = std::min(by + y, img.height - 1);
          in[x][y] = static_cast<double>(img.at(sx, sy)) - 128.0;
        }
      dct_forward(in, freq);

      // Quantize in zigzag order, RLE the zero runs.
      int zero_run = 0;
      for (int i = 0; i < 64; ++i) {
        const int zz = kZigzag[static_cast<std::size_t>(i)];
        const int u = zz / kBlock, v = zz % kBlock;
        const int coef = static_cast<int>(
            std::lround(freq[u][v] / q[static_cast<std::size_t>(zz)]));
        if (coef == 0) {
          ++zero_run;
        } else {
          put_signed(w, -zero_run - 1);  // negative sentinel: run of zeros
          put_signed(w, coef);
          zero_run = 0;
        }
      }
      put_signed(w, 0);  // end-of-block
    }
  }
  return w.take();
}

Image decode(const std::vector<std::uint8_t>& bytes) {
  util::ByteReader r(bytes);
  const std::uint8_t* magic = r.take(kMagic.size());
  for (std::size_t i = 0; i < kMagic.size(); ++i)
    if (magic[i] != static_cast<std::uint8_t>(kMagic[i]))
      throw util::IoError("tinyjpeg: bad magic");
  Image img;
  img.width = r.i32();
  img.height = r.i32();
  if (img.width <= 0 || img.height <= 0 || img.width > 1 << 16 ||
      img.height > 1 << 16)
    throw util::IoError("tinyjpeg: implausible dimensions");
  const int quality = r.u8();
  const auto q = quant_table(quality);
  img.pixels.assign(img.pixel_count(), 0);

  double freq[kBlock][kBlock];
  double out[kBlock][kBlock];
  for (int by = 0; by < img.height; by += kBlock) {
    for (int bx = 0; bx < img.width; bx += kBlock) {
      for (auto& row : freq) std::fill(std::begin(row), std::end(row), 0.0);
      int i = 0;
      for (;;) {
        const int tok = get_signed(r);
        if (tok == 0) break;  // end of block
        if (tok < 0) {
          i += -tok - 1;  // zero run
          const int coef = get_signed(r);
          if (i >= 64) throw util::IoError("tinyjpeg: coefficient overrun");
          const int zz = kZigzag[static_cast<std::size_t>(i)];
          freq[zz / kBlock][zz % kBlock] =
              coef * q[static_cast<std::size_t>(zz)];
          ++i;
        } else {
          throw util::IoError("tinyjpeg: corrupt token stream");
        }
      }
      dct_inverse(freq, out);
      for (int y = 0; y < kBlock; ++y)
        for (int x = 0; x < kBlock; ++x) {
          const int dx = bx + x, dy = by + y;
          if (dx >= img.width || dy >= img.height) continue;
          img.pixels[static_cast<std::size_t>(dy) *
                         static_cast<std::size_t>(img.width) +
                     static_cast<std::size_t>(dx)] = static_cast<std::uint8_t>(
              std::clamp(out[x][y] + 128.0, 0.0, 255.0));
        }
    }
  }
  return img;
}

Image crop_and_subsample(const Image& img) {
  // Centre crop with 32% of the area (side factor sqrt(0.32)), then keep
  // every third pixel of each row.
  const double side = std::sqrt(0.32);
  const int cw = std::max(static_cast<int>(img.width * side), 1);
  const int ch = std::max(static_cast<int>(img.height * side), 1);
  const int x0 = (img.width - cw) / 2;
  const int y0 = (img.height - ch) / 2;

  Image out;
  out.width = (cw + 2) / 3;
  out.height = ch;
  out.pixels.reserve(out.pixel_count());
  for (int y = 0; y < ch; ++y)
    for (int x = 0; x < cw; x += 3) out.pixels.push_back(img.at(x0 + x, y0 + y));
  return out;
}

double mean_abs_error(const Image& a, const Image& b) {
  if (a.width != b.width || a.height != b.height)
    throw util::UsageError("mean_abs_error: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i)
    sum += std::abs(static_cast<int>(a.pixels[i]) - static_cast<int>(b.pixels[i]));
  return a.pixels.empty() ? 0.0 : sum / static_cast<double>(a.pixels.size());
}

}  // namespace workloads

// tinyjpeg: a real (small) lossy image codec standing in for libjpeg in the
// paper's thumbnail demonstration application.
//
// JPEG-like structure: 8x8 block DCT -> uniform quantization -> zigzag ->
// run-length + varint entropy coding. Grayscale only. The data
// transformations are real (decode(encode(x)) is a close approximation of
// x), while the *time* cost of the work is charged to the simulated machine
// via the CostModel so timing experiments are host-independent (DESIGN.md,
// substitution table).
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace workloads {

struct Image {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  // row-major, 1 byte per pixel

  [[nodiscard]] std::size_t pixel_count() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
  [[nodiscard]] std::uint8_t at(int x, int y) const {
    return pixels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                  static_cast<std::size_t>(x)];
  }
};

/// Deterministic synthetic photo: smooth gradients plus soft random blobs
/// (compresses like a natural image: mostly low-frequency energy).
Image generate_image(std::uint64_t seed, int width, int height);

/// Encode with quality in [1, 100] (higher = larger, more faithful).
std::vector<std::uint8_t> encode(const Image& img, int quality = 75);

/// Decode; throws util::IoError on malformed input.
Image decode(const std::vector<std::uint8_t>& bytes);

/// The thumbnail transformation from the paper's assignment: crop the
/// centre 32% of the pixel array, then keep every third pixel of each row.
Image crop_and_subsample(const Image& img);

/// Mean absolute reconstruction error (tests bound codec loss with it).
double mean_abs_error(const Image& a, const Image& b);

/// Virtual-seconds cost model for the pipeline stages, calibrated so the
/// paper's 1058-file runs land at the right order of magnitude (Sec. III-E).
struct CostModel {
  double decode_per_pixel = 2.0e-6;   ///< decompress + crop + subsample
  double encode_per_pixel = 0.4e-6;   ///< recompress the (smaller) thumbnail
  double io_per_byte = 4.0e-9;        ///< PI_MAIN's disk read/write

  [[nodiscard]] double decode_cost(std::size_t pixels) const {
    return decode_per_pixel * static_cast<double>(pixels);
  }
  [[nodiscard]] double encode_cost(std::size_t pixels) const {
    return encode_per_pixel * static_cast<double>(pixels);
  }
  [[nodiscard]] double io_cost(std::size_t bytes) const {
    return io_per_byte * static_cast<double>(bytes);
  }
};

}  // namespace workloads

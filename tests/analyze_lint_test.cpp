// Topology / usage linter unit tests (hand-built Topology snapshots for
// every PLxx / PUxx diagnostic, positive and negative), plus in-process
// pilot runs with -pisvc=a asserting the findings surface in RunResult.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/topology.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"

namespace {

using analyze::BundleInfo;
using analyze::BundleUsage;
using analyze::ChannelInfo;
using analyze::ProcessInfo;
using analyze::Severity;
using analyze::Topology;

ProcessInfo proc(int rank, const std::string& name) {
  ProcessInfo p;
  p.rank = rank;
  p.name = name;
  p.site = {"demo.c", 10 + rank};
  return p;
}

ChannelInfo chan(int id, int writer, int reader) {
  ChannelInfo c;
  c.id = id;
  c.writer = writer;
  c.reader = reader;
  c.name = "C" + std::to_string(id);
  c.site = {"demo.c", 100 + id};
  return c;
}

BundleInfo bundle(int id, BundleUsage usage, std::vector<int> channel_ids) {
  BundleInfo b;
  b.id = id;
  b.usage = usage;
  b.name = "B" + std::to_string(id);
  b.channel_ids = std::move(channel_ids);
  b.site = {"demo.c", 200 + id};
  return b;
}

/// Main + two workers, main->W1->W2 pipeline; structurally clean.
Topology clean_topology() {
  Topology t;
  t.processes = {proc(0, "PI_MAIN"), proc(1, "W1"), proc(2, "W2")};
  t.channels = {chan(1, 0, 1), chan(2, 1, 2)};
  return t;
}

// --- lint_topology -----------------------------------------------------------

TEST(LintTopology, CleanTopologyHasNoFindings) {
  const auto rep = analyze::lint_topology(clean_topology());
  EXPECT_TRUE(rep.empty()) << rep.to_text();
}

TEST(LintTopology, SelfLoopChannelIsError) {
  Topology t = clean_topology();
  t.channels.push_back(chan(3, 2, 2));  // W2 -> W2
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL01")) << rep.to_text();
  const auto diags = rep.with_id("PL01");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_EQ(diags[0].subject, "C3");
  EXPECT_EQ(diags[0].file, "demo.c");
  EXPECT_EQ(diags[0].line, 103);
  EXPECT_NE(diags[0].message.find("itself"), std::string::npos);
}

TEST(LintTopology, SelfLoopProcessGetsPL07AtProcessSite) {
  Topology t = clean_topology();
  t.channels.push_back(chan(3, 2, 2));  // W2 -> W2
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL07")) << rep.to_text();
  const auto diags = rep.with_id("PL07");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kError);
  // PL01 points at the channel declaration; PL07 at the process wiring.
  EXPECT_EQ(diags[0].subject, "W2");
  EXPECT_EQ(diags[0].file, "demo.c");
  EXPECT_EQ(diags[0].line, 12);
  EXPECT_NE(diags[0].message.find("sole writer"), std::string::npos);
  EXPECT_NE(diags[0].message.find("self-deadlock"), std::string::npos);
}

TEST(LintTopology, IsolatedProcessIsWarning) {
  Topology t = clean_topology();
  t.processes.push_back(proc(3, "Loner"));
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL02")) << rep.to_text();
  const auto diags = rep.with_id("PL02");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_EQ(diags[0].subject, "Loner");
}

TEST(LintTopology, CoordinatorMainWithoutChannelsIsClean) {
  // PI_MAIN that only wires up workers and waits in PI_StopMain (the
  // deadlock_demo shape) is fine — PL02 is for worker processes.
  Topology t;
  t.processes = {proc(0, "PI_MAIN"), proc(1, "W1"), proc(2, "W2")};
  t.channels = {chan(1, 1, 2)};
  EXPECT_TRUE(analyze::lint_topology(t).empty());
}

TEST(LintTopology, SingleProcessProgramIsNotIsolated) {
  // A program that never calls PI_CreateProcess has just PI_MAIN and no
  // channels — legal, if pointless; must stay silent.
  Topology t;
  t.processes = {proc(0, "PI_MAIN")};
  EXPECT_TRUE(analyze::lint_topology(t).empty());
}

TEST(LintTopology, SelectorWithDistinctWritersIsClean) {
  Topology t = clean_topology();
  t.channels = {chan(1, 1, 0), chan(2, 2, 0)};  // W1->main, W2->main
  t.bundles = {bundle(1, BundleUsage::kSelect, {1, 2})};
  EXPECT_TRUE(analyze::lint_topology(t).empty());
}

TEST(LintTopology, SelectorWithDuplicateWriterIsWarning) {
  Topology t = clean_topology();
  t.channels = {chan(1, 1, 0), chan(2, 1, 0)};  // both from W1
  t.bundles = {bundle(1, BundleUsage::kSelect, {1, 2})};
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL03")) << rep.to_text();
  EXPECT_EQ(rep.with_id("PL03")[0].severity, Severity::kWarning);
}

TEST(LintTopology, MixedDirectionGatherIsError) {
  Topology t = clean_topology();
  // A gather bundle's common endpoint is the reader; here channel 2 reads
  // into W2 instead of main.
  t.channels = {chan(1, 1, 0), chan(2, 1, 2)};
  t.bundles = {bundle(1, BundleUsage::kGather, {1, 2})};
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL04")) << rep.to_text();
  EXPECT_EQ(rep.with_id("PL04")[0].severity, Severity::kError);
}

TEST(LintTopology, MixedDirectionBroadcastIsError) {
  Topology t = clean_topology();
  // Broadcast's common endpoint is the writer; channel 2 is written by W1.
  t.channels = {chan(1, 0, 1), chan(2, 1, 2)};
  t.bundles = {bundle(1, BundleUsage::kBroadcast, {1, 2})};
  EXPECT_TRUE(analyze::lint_topology(t).has("PL04"));
}

TEST(LintTopology, ConsistentBroadcastIsClean) {
  Topology t = clean_topology();
  t.bundles = {bundle(1, BundleUsage::kBroadcast, {1})};
  t.channels = {chan(1, 0, 1), chan(2, 0, 2)};
  t.bundles = {bundle(1, BundleUsage::kBroadcast, {1, 2})};
  EXPECT_TRUE(analyze::lint_topology(t).empty());
}

TEST(LintTopology, EmptyBundleIsError) {
  Topology t = clean_topology();
  t.bundles = {bundle(1, BundleUsage::kGather, {})};
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL05")) << rep.to_text();
  EXPECT_EQ(rep.with_id("PL05")[0].severity, Severity::kError);
}

TEST(LintTopology, DanglingChannelReferenceIsError) {
  Topology t = clean_topology();
  t.bundles = {bundle(1, BundleUsage::kGather, {1, 99})};
  const auto rep = analyze::lint_topology(t);
  ASSERT_TRUE(rep.has("PL06")) << rep.to_text();
  EXPECT_NE(rep.with_id("PL06")[0].message.find("99"), std::string::npos);
}

// --- lint_usage --------------------------------------------------------------

TEST(LintUsage, BalancedTrafficIsClean) {
  Topology t = clean_topology();
  for (auto& c : t.channels) {
    c.writes = 5;
    c.reads = 5;
    c.write_sigs = {"d"};
    c.read_sigs = {"d"};
  }
  EXPECT_TRUE(analyze::lint_usage(t).empty());
}

TEST(LintUsage, NeverUsedChannel) {
  Topology t = clean_topology();  // all counters zero
  const auto rep = analyze::lint_usage(t);
  EXPECT_EQ(rep.with_id("PU01").size(), 2u) << rep.to_text();
  EXPECT_FALSE(rep.has("PU02"));  // PU01 subsumes the others
  EXPECT_FALSE(rep.has("PU03"));
}

TEST(LintUsage, WrittenNeverRead) {
  Topology t = clean_topology();
  t.channels[0].writes = 3;
  t.channels[1].writes = 1;
  t.channels[1].reads = 1;
  const auto rep = analyze::lint_usage(t);
  const auto diags = rep.with_id("PU02");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].subject, "C1");
  EXPECT_NE(diags[0].message.find("3"), std::string::npos);
}

TEST(LintUsage, ReadNeverWritten) {
  Topology t = clean_topology();
  t.channels[0].reads = 1;
  t.channels[1].writes = 1;
  t.channels[1].reads = 1;
  const auto rep = analyze::lint_usage(t);
  ASSERT_EQ(rep.with_id("PU03").size(), 1u) << rep.to_text();
  EXPECT_EQ(rep.with_id("PU03")[0].subject, "C1");
}

TEST(LintUsage, UnconsumedMessages) {
  Topology t = clean_topology();
  t.channels[0].writes = 7;
  t.channels[0].reads = 4;
  t.channels[1].writes = 2;
  t.channels[1].reads = 2;
  const auto rep = analyze::lint_usage(t);
  const auto diags = rep.with_id("PU04");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_NE(diags[0].message.find("3 unconsumed"), std::string::npos);
}

TEST(LintUsage, SignatureMismatch) {
  Topology t = clean_topology();
  t.channels[0].writes = 1;
  t.channels[0].reads = 1;
  t.channels[0].write_sigs = {"d"};
  t.channels[0].read_sigs = {"lf"};
  t.channels[1].writes = 1;
  t.channels[1].reads = 1;
  t.channels[1].write_sigs = {"*d"};
  t.channels[1].read_sigs = {"4d"};  // both arrays of int: compatible
  const auto rep = analyze::lint_usage(t);
  const auto diags = rep.with_id("PU05");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].subject, "C1");
}

TEST(Signatures, Compatibility) {
  EXPECT_TRUE(analyze::signatures_compatible("d", "d"));
  EXPECT_TRUE(analyze::signatures_compatible("lu", "lu"));
  EXPECT_TRUE(analyze::signatures_compatible("*d", "*d"));
  EXPECT_TRUE(analyze::signatures_compatible("4d", "*d"));   // array either way
  EXPECT_TRUE(analyze::signatures_compatible("^b", "12b"));  // alloc'd array
  EXPECT_FALSE(analyze::signatures_compatible("d", "u"));
  EXPECT_FALSE(analyze::signatures_compatible("d", "*d"));   // scalar vs array
  EXPECT_FALSE(analyze::signatures_compatible("lld", "ld"));
  EXPECT_FALSE(analyze::signatures_compatible("f", "lf"));
}

// --- in-process runs with -pisvc=a ------------------------------------------

PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;
PI_CHANNEL* g_spare = nullptr;

int echo_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Write(g_from_worker, "%d", v + 1);
  return 0;
}

int unsigned_echo_worker(int, void*) {
  unsigned v = 0;
  PI_Read(g_to_worker, "%u", &v);
  PI_Write(g_from_worker, "%u", v);
  return 0;
}

TEST(AnalyzeService, CleanProgramHasNoFindings) {
  const auto res =
      pilot::run({"prog", "-pisvc=a", "-piwatchdog=20"}, [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        EXPECT_EQ(v, 2);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  EXPECT_TRUE(res.lint.empty()) << res.lint.to_text();
}

TEST(AnalyzeService, NeverReadChannelIsFlagged) {
  const auto res =
      pilot::run({"prog", "-pisvc=a", "-piwatchdog=20"}, [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        g_spare = PI_CreateChannel(PI_MAIN, w);
        PI_SetName(g_spare, "Spare");
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        PI_Write(g_spare, "%d", 99);  // nobody ever reads this
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  ASSERT_TRUE(res.lint.has("PU02")) << res.lint.to_text();
  EXPECT_EQ(res.lint.with_id("PU02")[0].subject, "Spare");
  // The recorded call site is this test file.
  EXPECT_NE(res.lint.with_id("PU02")[0].file.find("analyze_lint_test"),
            std::string::npos);
}

TEST(AnalyzeService, SelfLoopSurvivesToLinterAtCheckLevelZero) {
  const auto res = pilot::run(
      {"prog", "-pisvc=a", "-picheck=0", "-piwatchdog=20"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_CHANNEL* self = PI_CreateChannel(w, w);
        PI_SetName(self, "SelfLoop");
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  ASSERT_TRUE(res.lint.has("PL01")) << res.lint.to_text();
  EXPECT_EQ(res.lint.with_id("PL01")[0].subject, "SelfLoop");
  // The companion PL07 names the process that owns both ends.
  ASSERT_TRUE(res.lint.has("PL07")) << res.lint.to_text();
  EXPECT_NE(res.lint.with_id("PL07")[0].message.find("SelfLoop"),
            std::string::npos);
  EXPECT_TRUE(res.lint.has("PU01"));  // and it was never used
}

TEST(AnalyzeService, SignatureMismatchAcrossRun) {
  // Writer sends %d, reader asks for %u — slips through -picheck=1 (which
  // only validates counts) but the usage linter records both signatures.
  const auto res = pilot::run(
      {"prog", "-pisvc=a", "-picheck=1", "-piwatchdog=20"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(unsigned_echo_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 5);
        unsigned v = 0;
        PI_Read(g_from_worker, "%u", &v);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  ASSERT_TRUE(res.lint.has("PU05")) << res.lint.to_text();
}

TEST(AnalyzeService, OffByDefault) {
  const auto res = pilot::run({"prog", "-piwatchdog=20"}, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    g_spare = PI_CreateChannel(PI_MAIN, w);  // smelly, but service is off
    PI_StartAll();
    PI_Write(g_to_worker, "%d", 1);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_TRUE(res.lint.empty());
}

}  // namespace

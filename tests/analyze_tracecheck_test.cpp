// Happens-before trace checker: synthetic CLOG-2 files for every TCxxx
// diagnostic (positive and negative), then real traces from the collision
// and thumbnail workloads — the checker must flag both buggy collision
// instances and stay silent on the fixed variant and on clean farm traces.
#include <gtest/gtest.h>

#include <string>

#include "analyze/tracecheck.hpp"
#include "mpe/mpe.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "util/fs.hpp"
#include "workloads/collision_app.hpp"
#include "workloads/thumbnail_app.hpp"

namespace {

using analyze::Severity;

// --- synthetic-trace helpers -------------------------------------------------

clog2::File trace(int nranks) {
  clog2::File f;
  f.nranks = nranks;
  return f;
}

void send(clog2::File& f, double t, int from, int to, int tag) {
  clog2::MsgRec m;
  m.timestamp = t;
  m.rank = from;
  m.kind = clog2::MsgRec::Kind::kSend;
  m.partner = to;
  m.tag = tag;
  m.size = 4;
  f.records.emplace_back(m);
}

void recv(clog2::File& f, double t, int to, int from, int tag) {
  clog2::MsgRec m;
  m.timestamp = t;
  m.rank = to;
  m.kind = clog2::MsgRec::Kind::kRecv;
  m.partner = from;
  m.tag = tag;
  m.size = 4;
  f.records.emplace_back(m);
}

void def_state(clog2::File& f, int sid, int start_ev, int end_ev,
               const std::string& name) {
  clog2::StateDef sd;
  sd.state_id = sid;
  sd.start_event_id = start_ev;
  sd.end_event_id = end_ev;
  sd.name = name;
  sd.color = "red";
  f.records.emplace_back(sd);
}

void def_event(clog2::File& f, int id, const std::string& name) {
  clog2::EventDef ed;
  ed.event_id = id;
  ed.name = name;
  ed.color = "gray";
  f.records.emplace_back(ed);
}

void event(clog2::File& f, double t, int rank, int id,
           const std::string& text = {}) {
  clog2::EventRec ev;
  ev.timestamp = t;
  ev.rank = rank;
  ev.event_id = id;
  ev.text = text;
  f.records.emplace_back(ev);
}

/// One serialized query round-trip: main writes to `worker`, worker replies —
/// the Instance A pairing.
void paired_query(clog2::File& f, double& t, int worker) {
  send(f, t += 0.01, 0, worker, worker);       // main -> worker (down channel)
  recv(f, t += 0.01, worker, 0, worker);
  send(f, t += 0.01, worker, 0, 100 + worker); // worker -> main (up channel)
  recv(f, t += 0.01, 0, worker, 100 + worker);
}

// --- matching: TC101 / TC102 / TC103 / TC104 ---------------------------------

TEST(TraceCheck, EmptyTraceIsClean) {
  EXPECT_TRUE(analyze::check_trace(trace(0)).empty());
}

TEST(TraceCheck, MatchedPingPongIsClean) {
  auto f = trace(2);
  send(f, 0.1, 0, 1, 5);
  recv(f, 0.2, 1, 0, 5);
  send(f, 0.3, 1, 0, 6);
  recv(f, 0.4, 0, 1, 6);
  const auto rep = analyze::check_trace(f);
  EXPECT_TRUE(rep.empty()) << rep.to_text();
}

TEST(TraceCheck, UnreceivedSendIsTC101) {
  auto f = trace(2);
  send(f, 0.1, 0, 1, 5);
  send(f, 0.2, 0, 1, 5);
  const auto rep = analyze::check_trace(f);
  const auto diags = rep.with_id("TC101");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("2 send(s)"), std::string::npos);
}

TEST(TraceCheck, ReceiveWithoutSendIsTC102) {
  auto f = trace(2);
  recv(f, 0.1, 1, 0, 5);
  const auto rep = analyze::check_trace(f);
  const auto diags = rep.with_id("TC102");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_FALSE(rep.has("TC101"));
}

TEST(TraceCheck, ReceiveBeforeSendIsTC103) {
  auto f = trace(2);
  send(f, 1.0, 0, 1, 5);
  recv(f, 0.5, 1, 0, 5);  // matched, but timestamped before the send
  const auto rep = analyze::check_trace(f);
  ASSERT_TRUE(rep.has("TC103")) << rep.to_text();
  EXPECT_FALSE(rep.has("TC102"));
}

TEST(TraceCheck, NoCausalCycleFromAnyParseableTrace) {
  // TC104 is a defensive invariant: FIFO matching from a single record
  // stream always yields a valid linearization, so even a deliberately
  // shuffled trace must never report a causal cycle.
  auto f = trace(3);
  send(f, 0.9, 2, 0, 9);
  send(f, 0.1, 0, 1, 5);
  recv(f, 0.05, 0, 2, 9);
  recv(f, 0.8, 1, 0, 5);
  send(f, 0.2, 1, 2, 7);
  recv(f, 0.3, 2, 1, 7);
  EXPECT_FALSE(analyze::check_trace(f).has("TC104"));
}

// --- TC201: wildcard-receive race -------------------------------------------

TEST(TraceCheck, ConcurrentSendsToSameTagIsTC201) {
  auto f = trace(3);
  send(f, 0.1, 1, 0, 7);  // two causally unrelated sends, same destination
  send(f, 0.1, 2, 0, 7);  // and tag: a wildcard receive could match either
  recv(f, 0.2, 0, 1, 7);
  recv(f, 0.3, 0, 2, 7);
  const auto rep = analyze::check_trace(f);
  ASSERT_TRUE(rep.has("TC201")) << rep.to_text();
  EXPECT_EQ(rep.with_id("TC201")[0].severity, Severity::kWarning);
}

TEST(TraceCheck, CausallyOrderedSendsToSameTagAreClean) {
  auto f = trace(3);
  send(f, 0.1, 1, 0, 7);
  recv(f, 0.2, 0, 1, 7);
  send(f, 0.3, 0, 2, 3);  // rank 0 relays, so rank 2's send is ordered
  recv(f, 0.4, 2, 0, 3);
  send(f, 0.5, 2, 0, 7);
  recv(f, 0.6, 0, 2, 7);
  EXPECT_FALSE(analyze::check_trace(f).has("TC201"));
}

// --- TC202: serialized fan-in (Instance A shape) -----------------------------

TEST(TraceCheck, PairedQueryRoundsAreTC202) {
  auto f = trace(3);
  double t = 0.0;
  for (int round = 0; round < 2; ++round) {
    paired_query(f, t, 1);
    paired_query(f, t, 2);
  }
  const auto rep = analyze::check_trace(f);
  const auto diags = rep.with_id("TC202");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].subject, "rank 0");
  EXPECT_NE(diags[0].message.find("2 of 2"), std::string::npos);
}

TEST(TraceCheck, ConcurrentFanInIsClean) {
  auto f = trace(3);
  double t = 0.0;
  for (int round = 0; round < 2; ++round) {
    // All queries out first, then all replies: worker sends are concurrent.
    send(f, t += 0.01, 0, 1, 1);
    send(f, t += 0.01, 0, 2, 2);
    recv(f, t += 0.01, 1, 0, 1);
    recv(f, t += 0.01, 2, 0, 2);
    send(f, t += 0.01, 1, 0, 101);
    send(f, t += 0.01, 2, 0, 102);
    recv(f, t += 0.01, 0, 1, 101);
    recv(f, t += 0.01, 0, 2, 102);
  }
  const auto rep = analyze::check_trace(f);
  EXPECT_FALSE(rep.has("TC202")) << rep.to_text();
}

TEST(TraceCheck, SingleSerializedRoundIsBelowThreshold) {
  auto f = trace(3);
  double t = 0.0;
  paired_query(f, t, 1);
  paired_query(f, t, 2);  // one serialized round; default minimum is two
  EXPECT_FALSE(analyze::check_trace(f).has("TC202"));
}

TEST(TraceCheck, DispatcherMediatedOrderIsNotTC202) {
  // A demand-driven farm: rank 0 dispatches work, workers send results to a
  // separate collector (rank 3). The collector's incoming sends are totally
  // ordered through the dispatcher, but the collector itself never gates
  // them — this must not look like Instance A.
  auto f = trace(4);
  double t = 0.0;
  for (int round = 0; round < 2; ++round) {
    for (int w = 1; w <= 2; ++w) {
      send(f, t += 0.01, 0, w, w);        // dispatch
      recv(f, t += 0.01, w, 0, w);
      send(f, t += 0.01, w, 3, 200 + w);  // result to collector
      recv(f, t += 0.01, 3, w, 200 + w);
      send(f, t += 0.01, w, 0, 100 + w);  // ready token back to dispatcher
      recv(f, t += 0.01, 0, w, 100 + w);
    }
  }
  const auto rep = analyze::check_trace(f);
  // Rank 3's rounds are serialized but not receiver-gated; rank 0's ready
  // fan-in *is* gated through its own dispatching, which is exactly the
  // write/read pairing of Instance A, so rank 0 may be flagged — the
  // collector must not be.
  for (const auto& d : rep.with_id("TC202")) EXPECT_NE(d.subject, "rank 3");
}

// --- TC401..TC404: state interval anomalies ----------------------------------

TEST(TraceCheck, EndWithoutStartIsTC401) {
  auto f = trace(1);
  def_state(f, 1, 10, 11, "PI_Write");
  event(f, 0.5, 0, 11);
  const auto rep = analyze::check_trace(f);
  ASSERT_TRUE(rep.has("TC401")) << rep.to_text();
  EXPECT_EQ(rep.with_id("TC401")[0].severity, Severity::kError);
}

TEST(TraceCheck, NegativeDurationIsTC402) {
  auto f = trace(1);
  def_state(f, 1, 10, 11, "PI_Write");
  event(f, 1.0, 0, 10);
  event(f, 0.5, 0, 11);
  ASSERT_TRUE(analyze::check_trace(f).has("TC402"));
}

TEST(TraceCheck, UnclosedStateIsTC403Note) {
  auto f = trace(1);
  def_state(f, 1, 10, 11, "PI_Write");
  event(f, 0.5, 0, 10);
  const auto rep = analyze::check_trace(f);
  ASSERT_TRUE(rep.has("TC403")) << rep.to_text();
  EXPECT_EQ(rep.with_id("TC403")[0].severity, Severity::kNote);
  EXPECT_EQ(rep.finding_count(), 0u);  // notes don't fail the exit status
}

TEST(TraceCheck, OverlappingInstancesAreTC404) {
  auto f = trace(1);
  def_state(f, 1, 10, 11, "PI_Write");
  event(f, 0.1, 0, 10);
  event(f, 0.2, 0, 10);  // re-entered while open
  event(f, 0.3, 0, 11);
  event(f, 0.4, 0, 11);
  const auto rep = analyze::check_trace(f);
  EXPECT_EQ(rep.with_id("TC404").size(), 1u) << rep.to_text();  // once per key
}

TEST(TraceCheck, WellNestedStatesAreClean) {
  auto f = trace(1);
  def_state(f, 1, 10, 11, "PI_Write");
  event(f, 0.1, 0, 10);
  event(f, 0.2, 0, 11);
  event(f, 0.3, 0, 10);
  event(f, 0.4, 0, 11);
  EXPECT_TRUE(analyze::check_trace(f).empty());
}

// --- TC203: majority-idle stall (Instance B shape) ---------------------------

/// Three participants; ranks 1 and 2 blocked in PI_Read for [0.1, 0.9] of a
/// one-second trace (threshold is 2 of 3).
clog2::File majority_stall_trace() {
  auto f = trace(3);
  def_state(f, 1, 10, 11, "PI_Read");
  event(f, 0.0, 0, 99);  // rank 0 participates but is never blocked
  event(f, 0.1, 1, 10);
  event(f, 0.1, 2, 10);
  event(f, 0.9, 1, 11);
  event(f, 0.9, 2, 11);
  event(f, 1.0, 0, 99);
  return f;
}

TEST(TraceCheck, MajorityBlockedIsTC203) {
  const auto rep = analyze::check_trace(majority_stall_trace());
  const auto diags = rep.with_id("TC203");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].severity, Severity::kWarning);
  EXPECT_NE(diags[0].message.find("Instance B"), std::string::npos);
}

TEST(TraceCheck, MinorityBlockedIsClean) {
  auto f = trace(3);
  def_state(f, 1, 10, 11, "PI_Read");
  event(f, 0.0, 0, 99);
  event(f, 0.0, 2, 99);
  event(f, 0.1, 1, 10);  // only 1 of 3 blocked
  event(f, 0.9, 1, 11);
  event(f, 1.0, 0, 99);
  EXPECT_FALSE(analyze::check_trace(f).has("TC203"));
}

TEST(TraceCheck, ShortStallsAreClean) {
  auto f = trace(3);
  def_state(f, 1, 10, 11, "PI_Read");
  event(f, 0.0, 0, 99);
  event(f, 0.1, 1, 10);
  event(f, 0.1, 2, 10);
  event(f, 0.105, 1, 11);  // 5 ms majority stall in a 1 s trace
  event(f, 0.105, 2, 11);
  event(f, 1.0, 0, 99);
  EXPECT_FALSE(analyze::check_trace(f).has("TC203"));
}

TEST(TraceCheck, StallThresholdsAreTunable) {
  analyze::TraceCheckOptions opts;
  opts.stall_fraction = 0.95;  // the 80% stall no longer qualifies
  EXPECT_FALSE(analyze::check_trace(majority_stall_trace(), opts).has("TC203"));
}

// --- TC301: wait-for-graph cycle ---------------------------------------------

TEST(TraceCheck, TerminalWaitCycleIsTC301) {
  auto f = trace(3);
  def_event(f, 900, "Wait");
  event(f, 0.1, 1, 900, "C1<-R2");  // rank 1 waits on a channel written by 2
  event(f, 0.1, 2, 900, "C2<-R1");  // rank 2 waits on a channel written by 1
  const auto rep = analyze::check_trace(f);
  const auto diags = rep.with_id("TC301");
  ASSERT_EQ(diags.size(), 1u) << rep.to_text();
  EXPECT_EQ(diags[0].severity, Severity::kError);
  EXPECT_NE(diags[0].message.find("rank 1"), std::string::npos);
  EXPECT_NE(diags[0].message.find("rank 2"), std::string::npos);
}

TEST(TraceCheck, WaitOnLiveRankIsNotACycle) {
  auto f = trace(3);
  def_event(f, 900, "Wait");
  event(f, 0.1, 1, 900, "C1<-R0");  // rank 0 is not itself stuck
  EXPECT_FALSE(analyze::check_trace(f).has("TC301"));
}

TEST(TraceCheck, SatisfiedWaitIsNotTerminal) {
  auto f = trace(3);
  def_event(f, 900, "Wait");
  event(f, 0.1, 1, 900, "C1<-R2");
  event(f, 0.1, 2, 900, "C2<-R1");
  send(f, 0.2, 2, 1, 1);
  recv(f, 0.3, 1, 2, 1);  // rank 1's wait was served after all
  send(f, 0.4, 1, 2, 2);
  recv(f, 0.5, 2, 1, 2);
  EXPECT_FALSE(analyze::check_trace(f).has("TC301"));
}

// --- real traces: the paper's debugging assignment ---------------------------

namespace wc = workloads::collisions;
namespace wt = workloads::thumbnail;

/// Big enough (with -pisim-scale) that Instance B's serial parse shows up as
/// tens of milliseconds of majority-blocked trace time.
wc::AppConfig traced_collision(wc::Variant v, const util::TempDir& dir) {
  wc::AppConfig cfg;
  cfg.variant = v;
  cfg.workers = 3;
  cfg.records = 150000;
  cfg.query_rounds = 3;
  cfg.pilot_args = {"-piwatchdog=60", "-pisvc=j", "-pisim-scale=1.0",
                    "-piout=" + dir.path().string()};
  return cfg;
}

TEST(TraceCheckApp, InstanceAIsFlagged) {
  util::TempDir dir;
  const auto stats = wc::run_app(traced_collision(wc::Variant::kInstanceA, dir));
  ASSERT_FALSE(stats.run.aborted);
  const auto rep = analyze::check_trace(clog2::read_file(dir.file("pilot.clog2")));
  // The write/read pairing serializes every query round's fan-in on PI_MAIN.
  EXPECT_TRUE(rep.has("TC202")) << rep.to_text();
  EXPECT_GT(rep.finding_count(), 0u);
}

TEST(TraceCheckApp, InstanceBIsFlagged) {
  util::TempDir dir;
  const auto stats = wc::run_app(traced_collision(wc::Variant::kInstanceB, dir));
  ASSERT_FALSE(stats.run.aborted);
  const auto rep = analyze::check_trace(clog2::read_file(dir.file("pilot.clog2")));
  // All workers sit in PI_Read while PI_MAIN parses the whole file alone.
  EXPECT_TRUE(rep.has("TC203")) << rep.to_text();
  EXPECT_GT(rep.finding_count(), 0u);
}

TEST(TraceCheckApp, FixedVariantIsClean) {
  util::TempDir dir;
  const auto stats = wc::run_app(traced_collision(wc::Variant::kFixed, dir));
  ASSERT_FALSE(stats.run.aborted);
  const auto rep = analyze::check_trace(clog2::read_file(dir.file("pilot.clog2")));
  EXPECT_EQ(rep.finding_count(), 0u) << rep.to_text();
}

TEST(TraceCheckApp, ThumbnailFarmIsClean) {
  util::TempDir dir;
  wt::Config cfg;
  cfg.files = 12;
  cfg.workers = 3;
  cfg.image_size = 32;
  // Charge enough decode work (~0.2 s/image at sim-scale 1) that the trace
  // span is dominated by deterministic simulated compute, not by real
  // scheduling / logging overhead — otherwise a slow run (sanitizers, loaded
  // CI box) makes the startup phase look like a majority-idle stall.
  cfg.costs.decode_per_pixel = 200e-6;
  cfg.pilot_args = {"-piwatchdog=60", "-pisvc=j", "-pisim-scale=1.0",
                    "-piout=" + dir.path().string()};
  const auto stats = wt::run_app(cfg);
  ASSERT_FALSE(stats.run.aborted);
  const auto rep = analyze::check_trace(clog2::read_file(dir.file("pilot.clog2")));
  EXPECT_EQ(rep.finding_count(), 0u) << rep.to_text();
}

// --- cross-check against the runtime deadlock detector -----------------------

PI_CHANNEL* g_a_to_b = nullptr;
PI_CHANNEL* g_b_to_a = nullptr;

int cycle_reader_a(int, void*) {
  int v = 0;
  PI_Read(g_b_to_a, "%d", &v);
  PI_Write(g_a_to_b, "%d", 1);
  return 0;
}

int cycle_reader_b(int, void*) {
  int v = 0;
  PI_Read(g_a_to_b, "%d", &v);
  PI_Write(g_b_to_a, "%d", 2);
  return 0;
}

TEST(TraceCheckApp, SalvagedDeadlockTraceAgreesWithRuntimeDetector) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=jad", "-pirobust", "-piout=" + dir.path().string(),
       "-piwatchdog=60"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* a = PI_CreateProcess(cycle_reader_a, 0, nullptr);
        PI_PROCESS* b = PI_CreateProcess(cycle_reader_b, 1, nullptr);
        g_a_to_b = PI_CreateChannel(a, b);
        g_b_to_a = PI_CreateChannel(b, a);
        PI_StartAll();
        PI_StopMain(0);
        return 0;
      });
  // The online detector (-pisvc=d) aborted the run...
  ASSERT_TRUE(res.aborted);
  ASSERT_TRUE(res.deadlock);

  // ...and the offline checker reaches the same verdict from the salvaged
  // spill, via the terminal Wait events the analyze service logged.
  const auto salvaged = mpe::salvage((dir.path() / "pilot").string());
  const auto rep = analyze::check_trace(salvaged);
  ASSERT_TRUE(rep.has("TC301")) << rep.to_text();
  EXPECT_EQ(rep.with_id("TC301")[0].severity, Severity::kError);
}

}  // namespace

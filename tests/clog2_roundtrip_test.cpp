#include "clog2/clog2.hpp"

#include <gtest/gtest.h>

#include "util/fs.hpp"
#include "util/prng.hpp"

namespace {

clog2::File sample_file() {
  clog2::File f;
  f.nranks = 4;
  f.comment = "unit-test trace";
  f.records.emplace_back(clog2::EventDef{100, "MsgArrive", "yellow", "Channel: %s"});
  f.records.emplace_back(clog2::StateDef{1, 101, 102, "PI_Read", "red", "Line: %d"});
  f.records.emplace_back(clog2::ConstDef{"world_size", 4});
  f.records.emplace_back(clog2::EventRec{0.125, 2, 101, "Line: 42"});
  f.records.emplace_back(clog2::EventRec{0.250, 2, 102, ""});
  clog2::MsgRec m;
  m.timestamp = 0.2;
  m.rank = 0;
  m.kind = clog2::MsgRec::Kind::kSend;
  m.partner = 2;
  m.tag = 17;
  m.size = 4096;
  f.records.emplace_back(m);
  f.records.emplace_back(clog2::SyncRec{2, 1.5, 1.498});
  return f;
}

TEST(Clog2, SerializeParseRoundTrip) {
  const clog2::File f = sample_file();
  const auto bytes = clog2::serialize(f);
  const clog2::File g = clog2::parse(bytes);

  EXPECT_EQ(g.version, clog2::kFormatVersion);
  EXPECT_EQ(g.nranks, 4);
  EXPECT_EQ(g.comment, "unit-test trace");
  ASSERT_EQ(g.records.size(), f.records.size());

  const auto& def = std::get<clog2::StateDef>(g.records[1]);
  EXPECT_EQ(def.state_id, 1);
  EXPECT_EQ(def.start_event_id, 101);
  EXPECT_EQ(def.end_event_id, 102);
  EXPECT_EQ(def.name, "PI_Read");
  EXPECT_EQ(def.color, "red");

  const auto& ev = std::get<clog2::EventRec>(g.records[3]);
  EXPECT_DOUBLE_EQ(ev.timestamp, 0.125);
  EXPECT_EQ(ev.rank, 2);
  EXPECT_EQ(ev.text, "Line: 42");

  const auto& msg = std::get<clog2::MsgRec>(g.records[5]);
  EXPECT_EQ(msg.kind, clog2::MsgRec::Kind::kSend);
  EXPECT_EQ(msg.partner, 2);
  EXPECT_EQ(msg.tag, 17);
  EXPECT_EQ(msg.size, 4096u);

  const auto& sync = std::get<clog2::SyncRec>(g.records[6]);
  EXPECT_DOUBLE_EQ(sync.local_time, 1.5);
  EXPECT_DOUBLE_EQ(sync.ref_time, 1.498);
}

TEST(Clog2, EmptyFileRoundTrip) {
  clog2::File f;
  f.nranks = 0;
  const auto g = clog2::parse(clog2::serialize(f));
  EXPECT_TRUE(g.records.empty());
}

TEST(Clog2, FileIoRoundTrip) {
  util::TempDir dir;
  const auto path = dir.file("trace.clog2");
  clog2::write_file(path, sample_file());
  const clog2::File g = clog2::read_file(path);
  EXPECT_EQ(g.records.size(), sample_file().records.size());
}

TEST(Clog2, BadMagicRejected) {
  auto bytes = clog2::serialize(sample_file());
  bytes[0] = 'X';
  EXPECT_THROW(clog2::parse(bytes), util::IoError);
}

TEST(Clog2, BadVersionRejected) {
  auto bytes = clog2::serialize(sample_file());
  bytes[8] = 0xEE;  // version field follows the 8-byte magic
  EXPECT_THROW(clog2::parse(bytes), util::IoError);
}

TEST(Clog2, TruncationRejectedEverywhere) {
  // Chopping the file at any byte boundary must throw, never crash or
  // silently succeed.
  const auto bytes = clog2::serialize(sample_file());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(clog2::parse(prefix), util::IoError) << "cut at " << cut;
  }
}

TEST(Clog2, CorruptRecordKindRejected) {
  clog2::File f;
  f.nranks = 1;
  f.records.emplace_back(clog2::ConstDef{"x", 1});
  auto bytes = clog2::serialize(f);
  // The first record's kind byte sits right after header+count; find it by
  // locating the known kind value (3 = ConstDef) and stomping it.
  bool stomped = false;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] == 3) {
      bytes[i] = 200;
      stomped = true;
      break;
    }
  }
  ASSERT_TRUE(stomped);
  EXPECT_THROW(clog2::parse(bytes), util::IoError);
}

TEST(Clog2, CountHelper) {
  const clog2::File f = sample_file();
  EXPECT_EQ(f.count<clog2::EventRec>(), 2u);
  EXPECT_EQ(f.count<clog2::MsgRec>(), 1u);
  EXPECT_EQ(f.count<clog2::StateDef>(), 1u);
}

TEST(Clog2, TextDumpMentionsEverything) {
  const std::string text = clog2::to_text(sample_file());
  EXPECT_NE(text.find("PI_Read"), std::string::npos);
  EXPECT_NE(text.find("MsgArrive"), std::string::npos);
  EXPECT_NE(text.find("world_size"), std::string::npos);
  EXPECT_NE(text.find("send"), std::string::npos);
  EXPECT_NE(text.find("sync"), std::string::npos);
}

TEST(Clog2, LargeTraceRoundTrip) {
  util::SplitMix64 rng(3);
  clog2::File f;
  f.nranks = 8;
  for (int i = 0; i < 5000; ++i) {
    clog2::EventRec e;
    e.timestamp = rng.uniform(0, 100);
    e.rank = static_cast<std::int32_t>(rng.below(8));
    e.event_id = static_cast<std::int32_t>(rng.below(50));
    f.records.emplace_back(e);
  }
  const auto g = clog2::parse(clog2::serialize(f));
  ASSERT_EQ(g.records.size(), 5000u);
  for (std::size_t i = 0; i < 5000; ++i) {
    const auto& a = std::get<clog2::EventRec>(f.records[i]);
    const auto& b = std::get<clog2::EventRec>(g.records[i]);
    EXPECT_DOUBLE_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(a.rank, b.rank);
    EXPECT_EQ(a.event_id, b.event_id);
  }
}

}  // namespace

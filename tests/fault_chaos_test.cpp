// Chaos regression suite for -pifault= (see docs/FAULTS.md): a seed-sweep
// matrix over {crash, delay, truncate} x {lab2-style sum farm, thumbnail
// pipeline, collision-query Instance A} asserting the headline properties:
//
//   * every run either completes or dies with a named FJxx diagnostic —
//     never a hang (the watchdog + the ctest per-test timeout enforce it),
//     and a crashed run always leaves a salvageable robust log;
//   * same seed + same plan => byte-identical fault schedule and identical
//     salvaged-trace fingerprints (for the two deterministic apps; the
//     thumbnail pipeline hands work to "the next available worker", so only
//     its plan — not its message set — is run-stable);
//   * a crash-at-event-N salvage is exactly the fault-free run's prefix;
//   * fault plans compose with -pirecord=/-pireplay=.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include "analyze/tracecheck.hpp"
#include "clog2/clog2.hpp"
#include "fault/plan.hpp"
#include "mpe/mpe.hpp"
#include "mpisim/world.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "replay/crosscheck.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"
#include "workloads/collision_app.hpp"
#include "workloads/thumbnail_app.hpp"

namespace {

// --- the lab2-style sum farm (fully deterministic: no selects, no wildcards)

constexpr int kSumWorkers = 3;  // ranks 1..3; PI_MAIN is rank 0
constexpr int kSumRounds = 4;

PI_CHANNEL* g_sum_to[kSumWorkers];
PI_CHANNEL* g_sum_from[kSumWorkers];

int sum_worker(int index, void*) {
  for (int r = 0; r < kSumRounds; ++r) {
    int base = 0;
    PI_Read(g_sum_to[index], "%d", &base);
    int sum = 0;
    for (int v = 0; v < 100; ++v) sum += base + v;
    PI_Write(g_sum_from[index], "%d", sum);
  }
  return 0;
}

pilot::RunResult run_sum_raw(std::vector<std::string> args,
                             long long* total_out = nullptr) {
  args.insert(args.begin(), "prog");
  return pilot::run(args, [total_out](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kSumWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(sum_worker, i, nullptr);
      g_sum_to[i] = PI_CreateChannel(PI_MAIN, w);
      g_sum_from[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_StartAll();
    long long total = 0;
    for (int r = 0; r < kSumRounds; ++r) {
      for (int i = 0; i < kSumWorkers; ++i)
        PI_Write(g_sum_to[i], "%d", r * 10 + i);
      for (int i = 0; i < kSumWorkers; ++i) {
        int s = 0;
        PI_Read(g_sum_from[i], "%d", &s);
        total += s;
      }
    }
    if (total_out) *total_out = total;
    PI_StopMain(0);
    return 0;
  });
}

pilot::RunResult run_sum(std::vector<std::string> extra,
                         long long* total_out = nullptr) {
  std::vector<std::string> args = {"-piwatchdog=20", "-pisvc=j", "-pirobust"};
  for (auto& a : extra) args.push_back(std::move(a));
  return run_sum_raw(std::move(args), total_out);
}

// --- scenario matrix ---------------------------------------------------------

enum class App { kSum, kThumbnail, kInstanceA };
enum class Kind { kCrash, kDelay, kTrunc };

const char* app_name(App a) {
  switch (a) {
    case App::kSum: return "Sum";
    case App::kThumbnail: return "Thumbnail";
    case App::kInstanceA: return "InstanceA";
  }
  return "?";
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCrash: return "Crash";
    case Kind::kDelay: return "Delay";
    case Kind::kTrunc: return "Trunc";
  }
  return "?";
}

int app_nranks(App a) {
  // Sum / Instance A: PI_MAIN + 3 workers. Thumbnail: PI_MAIN + the
  // compressor (rank 1) + 3 decompressors.
  return a == App::kThumbnail ? 5 : 1 + kSumWorkers;
}

/// Deterministic per-(kind, seed) plan. Victims are never rank 0 here (the
/// focused tests below cover killing PI_MAIN); crash ordinals deliberately
/// overshoot sometimes, so part of the sweep completes fault-free.
std::string plan_for(App app, Kind kind, int seed) {
  const int victim = 1 + seed % (app_nranks(app) - 1);
  switch (kind) {
    case Kind::kCrash:
      // Ordinals 1..24 deliberately span three regimes: inside startup
      // (hollow-but-salvageable log), mid-run, and past the victim's last
      // call (the crash never fires and the run completes cleanly).
      return util::strprintf("seed=%d;grace=0.4;crash=%d@%s:%d", seed, victim,
                             seed % 2 == 1 ? "event" : "call",
                             1 + (seed * 7) % 24);
    case Kind::kDelay:
      return util::strprintf("seed=%d;delay=0.6:2", seed);
    case Kind::kTrunc:
      return util::strprintf("seed=%d;trunc=%d@write:%d:%d", seed, victim,
                             1 + seed % 5, seed % 3);
  }
  return "";
}

pilot::RunResult run_scenario(App app, const util::TempDir& dir,
                              const std::string& name,
                              const std::string& plan) {
  std::vector<std::string> extra = {"-piout=" + dir.path().string(),
                                    "-piname=" + name, "-pifault=" + plan};
  switch (app) {
    case App::kSum:
      return run_sum(extra);
    case App::kThumbnail: {
      workloads::thumbnail::Config cfg;
      cfg.files = 8;
      cfg.workers = 3;
      cfg.image_size = 16;
      cfg.pilot_args = {"-piwatchdog=20", "-pisvc=j", "-pirobust"};
      for (auto& a : extra) cfg.pilot_args.push_back(std::move(a));
      return workloads::thumbnail::run_app(cfg).run;
    }
    case App::kInstanceA: {
      workloads::collisions::AppConfig cfg;
      cfg.variant = workloads::collisions::Variant::kInstanceA;
      cfg.workers = 3;
      cfg.records = 2000;
      cfg.query_rounds = 2;
      cfg.costs.parse_per_byte = 0;
      cfg.costs.query_per_record = 0;
      cfg.pilot_args = {"-piwatchdog=20", "-pisvc=j", "-pirobust"};
      for (auto& a : extra) cfg.pilot_args.push_back(std::move(a));
      return workloads::collisions::run_app(cfg).run;
    }
  }
  return {};
}

std::size_t instance_count(const clog2::File& f) {
  return f.count<clog2::EventRec>() + f.count<clog2::MsgRec>();
}

std::string salvaged_fingerprint(const std::filesystem::path& base) {
  return replay::trace_fingerprint(mpe::salvage(base.string()));
}

/// The matrix invariant: completed cleanly, or died as the named dead-peer
/// abort with FJ diagnostics and a salvageable robust log. Never a watchdog
/// timeout, never a deadlock, never an unnamed failure.
void check_one_run(const pilot::RunResult& res, Kind kind,
                   const std::filesystem::path& base) {
  EXPECT_NE(res.abort_code, mpisim::World::kWatchdogAbortCode)
      << "hang: only the watchdog stopped this run";
  EXPECT_FALSE(res.deadlock) << res.deadlock_report;
  if (kind != Kind::kCrash) {
    EXPECT_FALSE(res.aborted) << "delay/trunc faults must never kill a run:\n"
                              << res.fault.to_text();
  }
  if (res.aborted) {
    EXPECT_EQ(res.abort_code, mpisim::World::kPeerDeadAbortCode);
    EXPECT_FALSE(res.crashed_ranks.empty());
    EXPECT_TRUE(res.fault.has("FJ10")) << res.fault.to_text();
    EXPECT_TRUE(res.fault.has("FJ11")) << res.fault.to_text();
    // The crashed run's spills always salvage: never a throw, and the result
    // round-trips through the regular CLOG-2 reader. A crash that lands in
    // startup (before the clock-sync barrier completes) legitimately leaves
    // zero instance records — hollow, but salvageable.
    clog2::File salvaged;
    ASSERT_NO_THROW(salvaged = mpe::salvage(base.string()))
        << "unsalvageable log at " << base;
    ASSERT_NO_THROW(clog2::parse(clog2::serialize(salvaged)));
  } else {
    EXPECT_EQ(res.status, 0);
    EXPECT_FALSE(res.fault.has("FJ10")) << res.fault.to_text();
    // Clean completion finalizes the full visual log as usual.
    const auto clog = base.string() + ".clog2";
    ASSERT_TRUE(std::filesystem::exists(clog)) << clog;
    EXPECT_GT(instance_count(clog2::read_file(clog)), 0u);
    if (kind == Kind::kTrunc && res.fault.has("FJ20")) {
      EXPECT_EQ(res.fault.count(analyze::Severity::kError), 0u)
          << res.fault.to_text();
    }
  }
}

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ChaosMatrix, CompletesOrDiesNamedAndReproducibly) {
  const App app = static_cast<App>(std::get<0>(GetParam()));
  const Kind kind = static_cast<Kind>(std::get<1>(GetParam()));
  const int seed = std::get<2>(GetParam());
  const std::string plan = plan_for(app, kind, seed);
  SCOPED_TRACE("plan: " + plan);

  util::TempDir dir;
  const auto a = run_scenario(app, dir, "a", plan);
  check_one_run(a, kind, dir.file("a"));
  const auto b = run_scenario(app, dir, "b", plan);
  check_one_run(b, kind, dir.file("b"));

  // The canonical plan heads every schedule dump.
  const std::string plan_text =
      "# fault schedule\n" + fault::parse_spec(plan).to_text();
  EXPECT_TRUE(util::starts_with(a.fault_schedule, plan_text))
      << a.fault_schedule;

  // Determinism across the re-run. The sum farm and Instance A are fully
  // deterministic programs, so the whole schedule — and the (salvaged)
  // trace — must reproduce byte-for-byte. The thumbnail pipeline's message
  // set is timing-dependent (PI_Select), so for it the invariants above and
  // the plan prefix are the contract.
  if (app != App::kThumbnail) {
    EXPECT_EQ(a.fault_schedule, b.fault_schedule);
    ASSERT_EQ(a.aborted, b.aborted);
    if (a.aborted) {
      EXPECT_EQ(a.crashed_ranks, b.crashed_ranks);
      EXPECT_EQ(salvaged_fingerprint(dir.file("a")),
                salvaged_fingerprint(dir.file("b")));
    } else {
      EXPECT_EQ(
          replay::trace_fingerprint(clog2::read_file(dir.file("a.clog2"))),
          replay::trace_fingerprint(clog2::read_file(dir.file("b.clog2"))));
    }
  } else {
    EXPECT_TRUE(util::starts_with(b.fault_schedule, plan_text))
        << b.fault_schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaosMatrix,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3),
                       ::testing::Range(1, 21)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& p) {
      return util::strprintf("%s_%s_seed%d",
                             app_name(static_cast<App>(std::get<0>(p.param))),
                             kind_name(static_cast<Kind>(std::get<1>(p.param))),
                             std::get<2>(p.param));
    });

// --- focused determinism / acceptance properties -----------------------------

TEST(FaultDeterminism, ThreeRunsProduceIdenticalScheduleAndSalvage) {
  util::TempDir dir;
  const std::string plan = "seed=5;grace=0.4;crash=2@call:6";
  std::vector<std::string> schedules, fingerprints;
  for (const std::string name : {"r0", "r1", "r2"}) {
    const auto res = run_sum({"-piout=" + dir.path().string(),
                              "-piname=" + name, "-pifault=" + plan});
    ASSERT_TRUE(res.aborted);
    EXPECT_EQ(res.abort_code, mpisim::World::kPeerDeadAbortCode);
    EXPECT_EQ(res.crashed_ranks, (std::vector<int>{2}));
    // The survivor diagnostic names the crashed rank.
    ASSERT_TRUE(res.fault.has("FJ11")) << res.fault.to_text();
    EXPECT_NE(res.fault.with_id("FJ11").front().message.find("2"),
              std::string::npos);
    schedules.push_back(res.fault_schedule);
    fingerprints.push_back(salvaged_fingerprint(dir.file(name)));
  }
  EXPECT_EQ(schedules[0], schedules[1]);
  EXPECT_EQ(schedules[0], schedules[2]);
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
  EXPECT_NE(schedules[0].find("fired crash-call rank 2 #6"), std::string::npos)
      << schedules[0];
}

/// Timestamp-free projection of one rank's instance records (event texts are
/// dropped: some popups embed wall-clock durations).
std::vector<std::string> rank_projection(const clog2::File& f, int rank) {
  std::vector<std::string> out;
  for (const auto& rec : f.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      if (e->rank == rank) out.push_back(util::strprintf("e:%d", e->event_id));
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      if (m->rank == rank)
        out.push_back(util::strprintf(
            "m:%s:%d:%d:%u", m->kind == clog2::MsgRec::Kind::kSend ? "s" : "r",
            m->partner, m->tag, m->size));
    }
  }
  return out;
}

std::vector<std::string> report_ids(const analyze::Report& rep) {
  std::vector<std::string> ids;
  for (const auto& d : rep.diagnostics()) ids.push_back(d.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(FaultDeterminism, EventCrashSalvageIsExactlyTheFaultFreePrefix) {
  util::TempDir dir;
  constexpr int kVictim = 1;
  constexpr std::uint64_t kN = 6;  // kill rank 1 after its 6th logged record

  const auto clean = run_sum(
      {"-piout=" + dir.path().string(), "-piname=clean"});
  ASSERT_FALSE(clean.aborted);
  const clog2::File full = clog2::read_file(dir.file("clean.clog2"));

  const auto crashed = run_sum(
      {"-piout=" + dir.path().string(), "-piname=crash",
       util::strprintf("-pifault=grace=0.4;crash=%d@event:%llu", kVictim,
                       static_cast<unsigned long long>(kN))});
  ASSERT_TRUE(crashed.aborted);
  const clog2::File salvaged = mpe::salvage(dir.file("crash").string());

  // The victim's salvaged stream is exactly its first N logged records of
  // the fault-free run; every survivor's stream is a prefix of its own.
  const auto victim_clean = rank_projection(full, kVictim);
  const auto victim_salvaged = rank_projection(salvaged, kVictim);
  ASSERT_EQ(victim_salvaged.size(), kN);
  ASSERT_GE(victim_clean.size(), kN);
  EXPECT_TRUE(std::equal(victim_salvaged.begin(), victim_salvaged.end(),
                         victim_clean.begin()))
      << "victim stream is not the fault-free prefix";
  for (int r = 0; r < 1 + kSumWorkers; ++r) {
    const auto pre = rank_projection(salvaged, r);
    const auto ref = rank_projection(full, r);
    ASSERT_LE(pre.size(), ref.size()) << "rank " << r;
    EXPECT_TRUE(std::equal(pre.begin(), pre.end(), ref.begin()))
        << "rank " << r << " salvaged stream diverges from the clean run";
  }

  // pilot-tracecheck's verdict on the salvage equals its verdict on the
  // fault-free trace truncated to the same per-rank prefix.
  clog2::File truncated;
  truncated.nranks = full.nranks;
  std::vector<std::size_t> budget(static_cast<std::size_t>(full.nranks));
  for (int r = 0; r < full.nranks; ++r)
    budget[static_cast<std::size_t>(r)] =
        rank_projection(salvaged, r).size();
  for (const auto& rec : full.records) {
    int rank = -1;
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) rank = e->rank;
    if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) rank = m->rank;
    if (rank < 0) {
      if (!std::holds_alternative<clog2::SyncRec>(rec))
        truncated.records.push_back(rec);  // defs/consts
      continue;
    }
    auto& left = budget[static_cast<std::size_t>(rank)];
    if (left > 0) {
      truncated.records.push_back(rec);
      --left;
    }
  }
  EXPECT_EQ(report_ids(analyze::check_trace(salvaged)),
            report_ids(analyze::check_trace(truncated)));
}

TEST(FaultCompose, PlansComposeWithRecordAndReplay) {
  util::TempDir dir;
  const std::string prl = dir.file("chaos.prl").string();
  const std::string plan = "seed=8;grace=0.4;delay=1:2;crash=3@call:7";

  const auto rec = run_sum({"-piout=" + dir.path().string(), "-piname=rec",
                            "-pifault=" + plan, "-pirecord=" + prl});
  ASSERT_TRUE(rec.aborted);
  EXPECT_EQ(rec.crashed_ranks, (std::vector<int>{3}));
  EXPECT_NE(rec.fault_schedule.find("delayed"), std::string::npos)
      << rec.fault_schedule;

  const auto rep = run_sum({"-piout=" + dir.path().string(), "-piname=rep",
                            "-pifault=" + plan, "-pireplay=" + prl});
  ASSERT_TRUE(rep.aborted);
  EXPECT_FALSE(rep.replay_diverged) << rep.replay.to_text();
  EXPECT_EQ(rep.crashed_ranks, rec.crashed_ranks);
  EXPECT_EQ(rep.fault_schedule, rec.fault_schedule);
  EXPECT_EQ(salvaged_fingerprint(dir.file("rec")),
            salvaged_fingerprint(dir.file("rep")));
}

TEST(FaultRuntime, KillingMainRankIsCleanlyReported) {
  util::TempDir dir;
  const auto res = run_sum({"-piout=" + dir.path().string(), "-piname=m",
                            "-pifault=grace=0.2;crash=0@call:4"});
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(res.abort_code, mpisim::World::kPeerDeadAbortCode);
  ASSERT_FALSE(res.crashed_ranks.empty());
  EXPECT_EQ(res.crashed_ranks.front(), 0);
  ASSERT_TRUE(res.fault.has("FJ10")) << res.fault.to_text();
  EXPECT_EQ(res.fault.with_id("FJ10").front().subject, "rank 0");
}

TEST(FaultRuntime, CombinedTruncAndCrashStillSalvages) {
  util::TempDir dir;
  const auto res = run_sum(
      {"-piout=" + dir.path().string(), "-piname=c",
       "-pifault=grace=0.4;trunc=1@write:3:2;crash=2@call:6"});
  ASSERT_TRUE(res.aborted);
  EXPECT_TRUE(res.fault.has("FJ10")) << res.fault.to_text();
  EXPECT_TRUE(res.fault.has("FJ20")) << res.fault.to_text();
  const clog2::File salvaged = mpe::salvage(dir.file("c").string());
  EXPECT_GT(instance_count(salvaged), 0u);
  // Rank 1's spill tore at its 3rd record write: salvage keeps the 2-record
  // prefix (instance or sync records alike) and drops the torn tail.
  std::size_t rank1_records = 0;
  for (const auto& rec : salvaged.records)
    std::visit(
        [&](const auto& r) {
          using T = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<T, clog2::EventRec> ||
                        std::is_same_v<T, clog2::MsgRec> ||
                        std::is_same_v<T, clog2::SyncRec>) {
            if (r.rank == 1) ++rank1_records;
          }
        },
        rec);
  EXPECT_EQ(rank1_records, 2u);
}

TEST(FaultRuntime, IncompatibleOptionsRejectedWithFJ02) {
  util::TempDir dir;
  const std::string out = "-piout=" + dir.path().string();
  // crash@event needs the MPE logger (-pisvc=j).
  try {
    run_sum_raw({"-piwatchdog=20", out, "-pifault=crash=1@event:3"});
    FAIL() << "event crash accepted without -pisvc=j";
  } catch (const util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("FJ02"), std::string::npos) << e.what();
  }
  // trunc needs robust spilling (-pisvc=j -pirobust).
  try {
    run_sum_raw({"-piwatchdog=20", "-pisvc=j", out,
                 "-pifault=trunc=1@write:2"});
    FAIL() << "trunc accepted without -pirobust";
  } catch (const util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("FJ02"), std::string::npos) << e.what();
  }
  // A victim rank outside the topology is rejected at PI_StartAll.
  try {
    run_sum({out, "-piname=oor", "-pifault=crash=9@call:1"});
    FAIL() << "crash rank 9 accepted in a 4-rank job";
  } catch (const util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("FJ02"), std::string::npos) << e.what();
  }
  // A malformed spec is FJ01 at PI_Configure.
  try {
    run_sum({out, "-piname=bad", "-pifault=crash=oops"});
    FAIL() << "malformed spec accepted";
  } catch (const util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("FJ01"), std::string::npos) << e.what();
  }
}

TEST(FaultRuntime, DelayedRunStillComputesTheRightAnswer) {
  util::TempDir dir;
  long long plain = 0, delayed = 0;
  ASSERT_FALSE(run_sum({"-piout=" + dir.path().string(), "-piname=p"}, &plain)
                   .aborted);
  const auto res = run_sum({"-piout=" + dir.path().string(), "-piname=d",
                            "-pifault=seed=11;delay=1:3"},
                           &delayed);
  ASSERT_FALSE(res.aborted);
  EXPECT_EQ(plain, delayed);
  EXPECT_NE(res.fault_schedule.find("delayed"), std::string::npos)
      << res.fault_schedule;
}

}  // namespace

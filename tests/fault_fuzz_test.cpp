// Adversarial-input tests for the three on-disk formats (CLOG-2, SLOG-2,
// .prl) and the spill salvager, driven from the checked-in golden corpus in
// tests/fixtures (regenerate with the `fixtures` target):
//
//   * library level: parse() of every truncation length and of single-bit
//     flips at every byte either succeeds or throws util::Error — never a
//     crash, never UB (the sanitize presets run this suite too);
//   * tool level: pilot-clog2print / pilot-slog2print / pilot-replayprint
//     exit nonzero with a diagnostic exactly when the library rejects the
//     bytes, and never die on a signal;
//   * mpe::salvage tolerates torn and corrupted spill streams (that is its
//     job), and pilot-logsalvage refuses an empty spill set loudly instead
//     of writing a hollow trace.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "clog2/clog2.hpp"
#include "mpe/mpe.hpp"
#include "replay/prl.hpp"
#include "slog2/frame_codec.hpp"
#include "slog2/slog2.hpp"
#include "util/bytebuf.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/varint.hpp"

#ifndef PILOT_TOOL_DIR
#error "PILOT_TOOL_DIR must be defined by the build"
#endif
#ifndef PILOT_FIXTURE_DIR
#error "PILOT_FIXTURE_DIR must be defined by the build"
#endif

namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(PILOT_FIXTURE_DIR) / name;
}

std::string tool(const std::string& name) {
  return std::string(PILOT_TOOL_DIR) + "/" + name;
}

std::vector<std::uint8_t> load(const std::string& name) {
  const auto bytes = util::read_file(fixture(name));
  EXPECT_FALSE(bytes.empty()) << "missing fixture " << name
                              << " (run the `fixtures` target)";
  return bytes;
}

/// Exit status of `cmd` with output captured (-1 if killed by a signal —
/// always a test failure here).
int run_status(const std::string& cmd, std::string* out = nullptr) {
  static const std::string capture =
      "/tmp/pilot_fuzz_test." + std::to_string(::getpid()) + ".out";
  const int rc = std::system((cmd + " > " + capture + " 2>&1").c_str());
  if (out) *out = util::read_text_file(capture);
  std::filesystem::remove(capture);
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

/// parse() under corruption must either succeed or throw util::Error.
/// Returns true when the bytes parsed cleanly.
template <typename ParseFn>
bool parses(const ParseFn& parse, const std::vector<std::uint8_t>& bytes) {
  try {
    parse(bytes);
    return true;
  } catch (const util::Error&) {
    return false;
  }
  // Anything else (std::bad_alloc from a hostile length field, a raw
  // std::exception, a sanitizer report) escapes and fails the test.
}

template <typename ParseFn>
void fuzz_format(const std::string& name, const ParseFn& parse) {
  const auto bytes = load(name);
  ASSERT_FALSE(bytes.empty());
  EXPECT_TRUE(parses(parse, bytes)) << name << " fixture does not parse";

  // Every truncation length, including the empty file.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    SCOPED_TRACE(name + " truncated to " + std::to_string(n));
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    parses(parse, cut);
  }
  // Single-bit and whole-byte flips at every position.
  for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                  std::uint8_t{0xff}}) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      SCOPED_TRACE(name + ": flip 0x" + std::to_string(mask) + " at byte " +
                   std::to_string(i));
      auto mutated = bytes;
      mutated[i] ^= mask;
      parses(parse, mutated);
    }
  }
  // Trailing garbage.
  auto padded = bytes;
  padded.insert(padded.end(), {0xde, 0xad, 0xbe, 0xef});
  parses(parse, padded);
}

TEST(FuzzParsers, Clog2SurvivesTruncationAndBitFlips) {
  fuzz_format("tiny.clog2",
              [](const std::vector<std::uint8_t>& b) { clog2::parse(b); });
  // The fixture must reject every strict prefix: the format carries an
  // explicit record count and end marker.
  const auto bytes = load("tiny.clog2");
  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_FALSE(parses(
        [](const std::vector<std::uint8_t>& b) { clog2::parse(b); },
        {bytes.begin(), bytes.begin() + static_cast<long>(n)}))
        << "prefix length " << n << " accepted";
}

TEST(FuzzParsers, Slog2SurvivesTruncationAndBitFlips) {
  fuzz_format("tiny.slog2",
              [](const std::vector<std::uint8_t>& b) { slog2::parse(b); });
}

TEST(FuzzParsers, Slog2V2SurvivesTruncationAndBitFlips) {
  fuzz_format("tiny.v2.slog2",
              [](const std::vector<std::uint8_t>& b) { slog2::parse(b); });
}

/// validate_file verdict for one backend: empty string = accepted,
/// otherwise the error text with the reader names normalized away — the
/// mmap and streaming readers phrase truncation identically except for
/// their own class name.
std::string backend_verdict(const std::filesystem::path& path,
                            slog2::ReadBackend backend) {
  try {
    slog2::validate_file(path, {}, backend);
    return "";
  } catch (const util::Error& e) {
    std::string msg = e.what();
    for (const char* name :
         {"MmapByteReader", "FileByteReader", "ByteReader"}) {
      for (std::size_t pos; (pos = msg.find(name)) != std::string::npos;)
        msg.replace(pos, std::string(name).size(), "Reader");
    }
    return msg;
  }
}

/// The mmap-backed reader must agree with the streaming reader on every
/// corrupted file: same accept/reject decision *and* the same diagnostic
/// (modulo the reader's own name). This pins the zero-copy path to the
/// incremental one across truncations, bit flips, and trailing growth.
void fuzz_backend_parity(const std::string& name) {
  const auto bytes = load(name);
  ASSERT_FALSE(bytes.empty());
  const auto dir = std::filesystem::path(::testing::TempDir());
  const auto path = dir / ("backend_parity_" + name);

  const auto check = [&](const std::vector<std::uint8_t>& variant) {
    util::write_file(path, variant);
    const std::string mmap_v = backend_verdict(path, slog2::ReadBackend::kMmap);
    const std::string stream_v =
        backend_verdict(path, slog2::ReadBackend::kStream);
    EXPECT_EQ(mmap_v, stream_v);
  };

  check(bytes);  // the pristine fixture must pass both
  // Every truncation length — a reader observing a shrunken file — then
  // bit/byte flips, then trailing garbage (a file that grew mid-read).
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    SCOPED_TRACE(name + " truncated to " + std::to_string(n));
    check({bytes.begin(), bytes.begin() + static_cast<long>(n)});
  }
  for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                  std::uint8_t{0xff}}) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      SCOPED_TRACE(name + ": flip 0x" + std::to_string(mask) + " at byte " +
                   std::to_string(i));
      auto mutated = bytes;
      mutated[i] ^= mask;
      check(mutated);
    }
  }
  auto padded = bytes;
  padded.insert(padded.end(), {0xde, 0xad, 0xbe, 0xef});
  check(padded);

  std::filesystem::remove(path);
}

TEST(FuzzParsers, Slog2MmapAndStreamBackendsAgree) {
  fuzz_backend_parity("tiny.slog2");
}

TEST(FuzzParsers, Slog2V2MmapAndStreamBackendsAgree) {
  fuzz_backend_parity("tiny.v2.slog2");
}

// The v2 payload codec's varint layer, fed hostile encodings directly.
// Every rejection must be a util::Error with the overrun caught before any
// allocation or write — the sanitizer presets run this suite too.
TEST(FuzzParsers, HostileVarintsRejected) {
  const auto decode = [](const std::vector<std::uint8_t>& b) {
    util::ByteReader r(b);
    return util::get_varint(r);
  };
  // Canonical encodings round-trip.
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{127}, std::uint64_t{128},
        std::uint64_t{1} << 32, ~std::uint64_t{0}}) {
    util::ByteWriter w;
    util::put_varint(w, v);
    EXPECT_EQ(decode(w.bytes()), v);
  }
  // Overlong (non-canonical) encoding of 0 and of 1.
  EXPECT_THROW(decode({0x80, 0x00}), util::Error);
  EXPECT_THROW(decode({0x81, 0x80, 0x00}), util::Error);
  // 10-byte encoding whose final byte pushes past 64 bits.
  EXPECT_THROW(decode({0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                       0x02}),
               util::Error);
  // Continuation bit never drops: reader runs past 10 bytes.
  EXPECT_THROW(decode({0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                       0xff, 0xff, 0x01}),
               util::Error);
  // Truncated mid-varint.
  EXPECT_THROW(decode({0xff}), util::Error);
  EXPECT_THROW(decode({}), util::Error);
  // 32-bit field decoders refuse silent truncation.
  {
    util::ByteWriter w;
    util::put_varint(w, std::uint64_t{1} << 40);
    util::ByteReader r(w.bytes());
    EXPECT_THROW(util::get_varint32(r), util::Error);
  }
  {
    util::ByteWriter w;
    util::put_svarint(w, std::int64_t{1} << 40);
    util::ByteReader r(w.bytes());
    EXPECT_THROW(util::get_svarint32(r), util::Error);
  }
}

// Hostile drawable counts in a v2 payload: a count claiming more elements
// than the remaining bytes could hold must be rejected up front (no giant
// resize), and text lengths past the payload end must throw, not read OOB.
TEST(FuzzParsers, HostileV2CountsRejected) {
  const auto decode = [](const std::vector<std::uint8_t>& payload) {
    util::ByteReader r(payload);
    std::vector<slog2::StateDrawable> s;
    std::vector<slog2::EventDrawable> e;
    std::vector<slog2::ArrowDrawable> a;
    slog2::detail::decode_drawables_v2(r, &s, &e, &a);
  };
  {
    util::ByteWriter w;  // claims 2^40 states in a payload of a few bytes
    util::put_varint(w, std::uint64_t{1} << 40);
    util::put_varint(w, 0);
    util::put_varint(w, 0);
    EXPECT_THROW(decode(w.bytes()), util::Error);
  }
  {
    util::ByteWriter w;  // one event whose text length runs past the end
    util::put_varint(w, 0);
    util::put_varint(w, 1);
    util::put_varint(w, 0);
    util::put_svarint(w, 1);                    // cat
    util::put_svarint(w, 0);                    // rank
    util::put_varint(w, 0);                     // time delta
    util::put_varint(w, std::uint64_t{1} << 20);  // text length: hostile
    EXPECT_THROW(decode(w.bytes()), util::Error);
  }
}

TEST(FuzzParsers, PrlSurvivesTruncationAndBitFlips) {
  fuzz_format("tiny.prl",
              [](const std::vector<std::uint8_t>& b) { replay::parse(b); });
  const auto bytes = load("tiny.prl");
  for (std::size_t n = 0; n < bytes.size(); ++n)
    EXPECT_FALSE(parses(
        [](const std::vector<std::uint8_t>& b) { replay::parse(b); },
        {bytes.begin(), bytes.begin() + static_cast<long>(n)}))
        << "prefix length " << n << " accepted";
}

// --- the print tools must track the library's verdict ------------------------

struct ToolCase {
  const char* fixture_name;
  const char* tool_name;
  bool (*lib_ok)(const std::vector<std::uint8_t>&);
};

void fuzz_tool(const ToolCase& tc) {
  const auto bytes = load(tc.fixture_name);
  ASSERT_FALSE(bytes.empty());
  util::TempDir dir;
  const auto probe = [&](const std::vector<std::uint8_t>& mutated,
                         const std::string& label) {
    const auto path = dir.file("corrupt.bin");
    util::write_file(path, mutated);
    std::string out;
    const int status =
        run_status(tool(tc.tool_name) + " " + path.string(), &out);
    ASSERT_GE(status, 0) << tc.tool_name << " died on a signal (" << label
                         << ")";
    if (tc.lib_ok(mutated)) {
      EXPECT_EQ(status, 0) << label << "\n" << out;
    } else {
      EXPECT_NE(status, 0) << label << " accepted\n" << out;
      EXPECT_NE(out.find("error"), std::string::npos)
          << label << ": no diagnostic printed:\n"
          << out;
    }
  };

  // A spread of truncation lengths (every 7th byte plus the edges) and a
  // few corrupting flips; the exhaustive sweep is library-level above.
  std::vector<std::size_t> cuts = {0, 1, bytes.size() / 2, bytes.size() - 1};
  for (std::size_t n = 0; n < bytes.size(); n += 7) cuts.push_back(n);
  for (const std::size_t n : cuts)
    probe({bytes.begin(), bytes.begin() + static_cast<long>(n)},
          "truncated to " + std::to_string(n));
  for (const std::size_t i :
       {std::size_t{0}, bytes.size() / 3, (2 * bytes.size()) / 3,
        bytes.size() - 1}) {
    auto mutated = bytes;
    mutated[i] ^= 0x80;
    probe(mutated, "bit flip at byte " + std::to_string(i));
  }
  probe(bytes, "pristine fixture");
}

TEST(FuzzTools, Clog2PrintNeverCrashes) {
  fuzz_tool({"tiny.clog2", "pilot-clog2print",
             [](const std::vector<std::uint8_t>& b) {
               return parses(
                   [](const std::vector<std::uint8_t>& x) { clog2::parse(x); },
                   b);
             }});
}

TEST(FuzzTools, Slog2PrintNeverCrashes) {
  fuzz_tool({"tiny.slog2", "pilot-slog2print",
             [](const std::vector<std::uint8_t>& b) {
               return parses(
                   [](const std::vector<std::uint8_t>& x) { slog2::parse(x); },
                   b);
             }});
}

TEST(FuzzTools, Slog2PrintV2NeverCrashes) {
  fuzz_tool({"tiny.v2.slog2", "pilot-slog2print",
             [](const std::vector<std::uint8_t>& b) {
               return parses(
                   [](const std::vector<std::uint8_t>& x) { slog2::parse(x); },
                   b);
             }});
}

// Version-mismatch contract: a v1-only reader (modeled by forcing
// --frame-encoding=v1) must refuse a v2 file with a named diagnostic and a
// nonzero exit — never decode garbage. And symmetrically for forced v2.
TEST(FuzzTools, Slog2PrintForcedEncodingMismatchFailsLoudly) {
  std::string out;
  int status = run_status(tool("pilot-slog2print") + " --frame-encoding=v1 " +
                              fixture("tiny.v2.slog2").string(),
                          &out);
  EXPECT_NE(status, 0) << out;
  EXPECT_NE(out.find("frame-encoding mismatch"), std::string::npos) << out;

  status = run_status(tool("pilot-slog2print") + " --frame-encoding=v2 " +
                          fixture("tiny.slog2").string(),
                      &out);
  EXPECT_NE(status, 0) << out;
  EXPECT_NE(out.find("frame-encoding mismatch"), std::string::npos) << out;

  // Matching forces succeed.
  EXPECT_EQ(run_status(tool("pilot-slog2print") + " --frame-encoding=v2 " +
                           fixture("tiny.v2.slog2").string(),
                       &out),
            0)
      << out;
  EXPECT_EQ(run_status(tool("pilot-slog2print") + " --frame-encoding=v1 " +
                           fixture("tiny.slog2").string(),
                       &out),
            0)
      << out;
}

TEST(FuzzTools, ReplayPrintNeverCrashes) {
  fuzz_tool({"tiny.prl", "pilot-replayprint",
             [](const std::vector<std::uint8_t>& b) {
               return parses(
                   [](const std::vector<std::uint8_t>& x) { replay::parse(x); },
                   b);
             }});
}

// --- salvage under corruption ------------------------------------------------

void copy_salvage_fixtures(const util::TempDir& dir, const std::string& base) {
  for (const char* suffix : {".defs.spill", ".rank0.spill", ".rank1.spill"})
    std::filesystem::copy_file(
        fixture("salvage" + std::string(suffix)), dir.file(base + suffix),
        std::filesystem::copy_options::overwrite_existing);
}

TEST(FuzzSalvage, ToleratesTornAndCorruptedSpills) {
  const auto rank0 = load("salvage.rank0.spill");
  util::TempDir dir;
  copy_salvage_fixtures(dir, "s");
  const clog2::File whole = mpe::salvage(dir.file("s").string());
  const std::size_t whole_count =
      whole.count<clog2::EventRec>() + whole.count<clog2::MsgRec>();
  ASSERT_GT(whole_count, 0u);

  // Any torn tail on one rank's stream: salvage keeps the prefix, drops the
  // tail, and never reports more than the intact stream held.
  for (std::size_t n = 0; n < rank0.size(); ++n) {
    SCOPED_TRACE("rank0 spill truncated to " + std::to_string(n));
    util::write_file(dir.file("s.rank0.spill"),
                     std::vector<std::uint8_t>(
                         rank0.begin(), rank0.begin() + static_cast<long>(n)));
    clog2::File got;
    ASSERT_NO_THROW(got = mpe::salvage(dir.file("s").string()));
    EXPECT_LE(got.count<clog2::EventRec>() + got.count<clog2::MsgRec>(),
              whole_count);
  }
  // Bit flips may corrupt a record mid-stream; salvage must still come back
  // with a File (possibly shorter), never crash.
  for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80},
                                  std::uint8_t{0xff}}) {
    for (std::size_t i = 0; i < rank0.size(); ++i) {
      SCOPED_TRACE("rank0 spill flip 0x" + std::to_string(mask) + " at " +
                   std::to_string(i));
      auto mutated = rank0;
      mutated[i] ^= mask;
      util::write_file(dir.file("s.rank0.spill"), mutated);
      try {
        mpe::salvage(dir.file("s").string());
      } catch (const util::Error&) {
        // A corrupted definition/record the salvager cannot skip is allowed
        // to fail loudly — just never crash or hang.
      }
    }
  }
}

TEST(FuzzSalvage, LogsalvageToolRefusesEmptyAndAcceptsFixture) {
  util::TempDir dir;
  // Genuinely empty spill set: defs present, zero-byte rank streams.
  copy_salvage_fixtures(dir, "e");
  util::write_file(dir.file("e.rank0.spill"), std::vector<std::uint8_t>{});
  util::write_file(dir.file("e.rank1.spill"), std::vector<std::uint8_t>{});
  std::string out;
  int status = run_status(
      tool("pilot-logsalvage") + " " + dir.file("e").string(), &out);
  EXPECT_EQ(status, 1) << out;
  EXPECT_NE(out.find("no salvageable records"), std::string::npos) << out;
  EXPECT_FALSE(std::filesystem::exists(dir.file("e.salvaged.clog2")))
      << "a hollow trace was written anyway";

  // No spill files at all is an error too (not a success with 0 records).
  status = run_status(
      tool("pilot-logsalvage") + " " + dir.file("missing").string(), &out);
  EXPECT_NE(status, 0) << out;

  // The pristine fixture set salvages fine and round-trips through the
  // regular reader.
  copy_salvage_fixtures(dir, "s");
  status = run_status(tool("pilot-logsalvage") + " " + dir.file("s").string(),
                      &out);
  EXPECT_EQ(status, 0) << out;
  const clog2::File f = clog2::read_file(dir.file("s.salvaged.clog2"));
  EXPECT_EQ(f.nranks, 2);
  EXPECT_GT(f.count<clog2::EventRec>() + f.count<clog2::MsgRec>(), 0u);
}

}  // namespace

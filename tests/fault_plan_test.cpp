// fault::Plan / fault::Injector unit tests: the -pifault= grammar (FJ01
// strictness, @FILE plan files, to_text canonicalization) and the
// injector's deterministic decisions (seeded delays, crash-at-Nth-call,
// spill truncation, schedule_text stability).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "mpisim/fault_hook.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace {

using fault::CrashPoint;
using fault::Injector;
using fault::Plan;
using fault::parse_spec;

// --- grammar -----------------------------------------------------------------

TEST(FaultPlan, ParsesFullSpec) {
  const Plan p =
      parse_spec("seed=42; grace=0.5; delay=0.25:3; crash=2@call:7; "
                 "crash=1@event:4; trunc=3@write:2:8");
  EXPECT_EQ(p.seed, 42u);
  EXPECT_DOUBLE_EQ(p.grace_seconds, 0.5);
  EXPECT_DOUBLE_EQ(p.delay.prob, 0.25);
  EXPECT_DOUBLE_EQ(p.delay.max_ms, 3.0);
  ASSERT_EQ(p.crashes.size(), 2u);
  ASSERT_EQ(p.truncs.size(), 1u);
  EXPECT_EQ(p.truncs[0].rank, 3);
  EXPECT_EQ(p.truncs[0].nth_write, 2u);
  EXPECT_EQ(p.truncs[0].keep_bytes, 8u);
  EXPECT_TRUE(p.has_event_crash());
  EXPECT_TRUE(p.has_trunc());
  EXPECT_FALSE(p.empty());
}

TEST(FaultPlan, DefaultsAreBenign) {
  const Plan p;
  EXPECT_EQ(p.seed, 1u);
  EXPECT_DOUBLE_EQ(p.grace_seconds, 1.0);
  EXPECT_EQ(p.delay.rank, -1);  // jitter targets every sender by default
  EXPECT_TRUE(p.empty());
}

TEST(FaultPlan, ParsesTargetedDelay) {
  const Plan p = parse_spec("delay=0.5:3@2");
  EXPECT_DOUBLE_EQ(p.delay.prob, 0.5);
  EXPECT_DOUBLE_EQ(p.delay.max_ms, 3.0);
  EXPECT_EQ(p.delay.rank, 2);
  // An untargeted clause still means "all senders".
  EXPECT_EQ(parse_spec("delay=0.5:3").delay.rank, -1);
  // And the targeted form survives the to_text round trip.
  const Plan q = parse_spec(p.to_text());
  EXPECT_EQ(q.delay.rank, 2);
  EXPECT_NE(p.to_text().find("delay=0.5:3@2"), std::string::npos);
}

TEST(FaultPlan, ToTextRoundtripsThroughParse) {
  const Plan p = parse_spec("crash=2@call:7;delay=1:2.5;seed=9;trunc=1@write:3");
  const Plan q = parse_spec(p.to_text());
  EXPECT_EQ(p.to_text(), q.to_text());
  EXPECT_NE(p.to_text().find("seed=9"), std::string::npos);
  EXPECT_NE(p.to_text().find("crash=2@call:7"), std::string::npos);
  EXPECT_NE(p.to_text().find("trunc=1@write:3:0"), std::string::npos);
}

TEST(FaultPlan, MalformedSpecsRaiseFJ01) {
  const std::vector<std::string> bad = {
      "",                      // empty
      ";;",                    // only separators
      "bogus",                 // no '='
      "seed=",                 // empty value
      "seed=-3",               // negative unsigned
      "seed=abc",              // not a number
      "grace=-1",              // negative grace
      "delay=0.5",             // missing jitter bound
      "delay=2:1",             // probability > 1
      "delay=0.5:-4",          // negative jitter
      "delay=0.5:3@",          // empty target rank
      "delay=0.5:3@x",         // non-numeric target rank
      "delay=0.5:3@9999999",   // target rank out of range
      "crash=1",               // missing '@'
      "crash=1@step:3",        // unknown crash point
      "crash=1@call:0",        // 0 is not a 1-based ordinal
      "crash=9999999@call:1",  // rank out of range
      "crash=1@call:2;crash=1@event:3",  // duplicate rank
      "trunc=1@write:0",       // 0 is not a 1-based ordinal
      "trunc=1@read:2",        // only 'write' is a trunc point
      "trunc=1@write:1;trunc=1@write:2",  // duplicate rank
      "turbo=1",               // unknown key
  };
  for (const auto& spec : bad) {
    try {
      parse_spec(spec);
      FAIL() << "accepted: '" << spec << "'";
    } catch (const util::UsageError& e) {
      EXPECT_NE(std::string(e.what()).find("FJ01"), std::string::npos)
          << spec << " -> " << e.what();
    }
  }
}

TEST(FaultPlan, PlanFileWithCommentsAndBlanks) {
  util::TempDir dir;
  const auto path = dir.file("plan.txt");
  util::write_file(path, std::string("# chaos scenario 12\n"
                                     "seed=12\n"
                                     "\n"
                                     "grace=0.25   # short grace\n"
                                     "crash=2@call:5\n"));
  const Plan p = parse_spec("@" + path.string());
  EXPECT_EQ(p.seed, 12u);
  EXPECT_DOUBLE_EQ(p.grace_seconds, 0.25);
  ASSERT_EQ(p.crashes.size(), 1u);
  EXPECT_EQ(p.crashes[0].rank, 2);
  EXPECT_EQ(p.crashes[0].n, 5u);
}

TEST(FaultPlan, PlanFileMissingOrEmptyFails) {
  util::TempDir dir;
  EXPECT_THROW(parse_spec("@" + dir.file("nope.txt").string()), util::Error);
  const auto empty = dir.file("empty.txt");
  util::write_file(empty, std::string("# nothing but comments\n\n"));
  EXPECT_THROW(parse_spec("@" + empty.string()), util::UsageError);
  EXPECT_THROW(parse_spec("@"), util::UsageError);
}

// --- injector ----------------------------------------------------------------

TEST(FaultInjector, RejectsOutOfRangeRanksWithFJ02) {
  try {
    Injector(parse_spec("crash=5@call:1"), 4);
    FAIL() << "crash rank 5 accepted in a 4-rank world";
  } catch (const util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("FJ02"), std::string::npos) << e.what();
  }
  EXPECT_THROW(Injector(parse_spec("trunc=4@write:1"), 4), util::UsageError);
  EXPECT_NO_THROW(Injector(parse_spec("crash=3@call:1"), 4));
}

TEST(FaultInjector, CrashFiresExactlyAtTheNthCall) {
  Injector inj(parse_spec("crash=1@call:3"), 2);
  inj.at_call(0, "send");  // other ranks never fire
  inj.at_call(1, "send");
  inj.at_call(1, "receive");
  try {
    inj.at_call(1, "barrier");
    FAIL() << "third call on rank 1 did not fire";
  } catch (const mpisim::RankKilledError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_NE(std::string(e.what()).find("FJ10"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("barrier"), std::string::npos);
  }
  const auto fired = inj.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Injector::Fired::Kind::kCrashCall);
  EXPECT_EQ(fired[0].rank, 1);
  EXPECT_EQ(fired[0].n, 3u);
}

TEST(FaultInjector, EventCrashFiresAfterTheNthLoggedRecord) {
  Injector inj(parse_spec("crash=1@event:2"), 2);
  inj.on_logged_record(0, 1);
  inj.on_logged_record(1, 1);
  EXPECT_THROW(inj.on_logged_record(1, 2), mpisim::RankKilledError);
}

TEST(FaultInjector, DelayIsDeterministicPerMessageIdentity) {
  const Plan plan = parse_spec("seed=77;delay=1:5");
  Injector a(plan, 4);
  Injector b(plan, 4);
  bool any_positive = false;
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    const double d1 = a.message_delay(0, 1, seq, 64);
    const double d2 = b.message_delay(0, 1, seq, 64);
    EXPECT_DOUBLE_EQ(d1, d2) << "pair_seq " << seq;
    EXPECT_GE(d1, 0.0);
    EXPECT_LE(d1, 0.005 + 1e-12);  // max_ms=5 -> 5 ms bound
    any_positive = any_positive || d1 > 0.0;
  }
  EXPECT_TRUE(any_positive);

  // A different seed reshuffles the schedule.
  Injector c(parse_spec("seed=78;delay=1:5"), 4);
  bool any_diff = false;
  for (std::uint64_t seq = 0; seq < 32; ++seq)
    any_diff = any_diff ||
               std::abs(a.message_delay(0, 1, seq, 64) -
                        c.message_delay(0, 1, seq, 64)) > 1e-12;
  EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, TargetedDelayOnlyJittersTheNamedSender) {
  Injector inj(parse_spec("seed=77;delay=1:5@1"), 4);
  bool any_positive = false;
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    any_positive = any_positive || inj.message_delay(1, 0, seq, 64) > 0.0;
    // Every other sender is untouched, including messages *to* the target.
    EXPECT_DOUBLE_EQ(inj.message_delay(0, 1, seq, 64), 0.0);
    EXPECT_DOUBLE_EQ(inj.message_delay(2, 3, seq, 64), 0.0);
  }
  EXPECT_TRUE(any_positive);
}

TEST(FaultInjector, TargetedDelayRankIsRangeCheckedWithFJ02) {
  try {
    Injector(parse_spec("delay=1:5@7"), 4);
    FAIL() << "delay rank 7 accepted in a 4-rank world";
  } catch (const util::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("FJ02"), std::string::npos) << e.what();
  }
  EXPECT_NO_THROW(Injector(parse_spec("delay=1:5@3"), 4));
}

TEST(FaultInjector, NoDelayClauseMeansNoJitter) {
  Injector inj(parse_spec("seed=5;crash=1@call:99"), 2);
  for (std::uint64_t seq = 0; seq < 8; ++seq)
    EXPECT_DOUBLE_EQ(inj.message_delay(0, 1, seq, 16), 0.0);
}

TEST(FaultInjector, TruncationTruncatesExactlyOneWrite) {
  Injector inj(parse_spec("trunc=0@write:2:4"), 1);
  EXPECT_EQ(inj.spill_write_bytes(0, 1, 100), 100u);
  EXPECT_EQ(inj.spill_write_bytes(0, 2, 100), 4u);  // the injected tear
  EXPECT_EQ(inj.spill_write_bytes(0, 3, 100), 100u);
  const auto fired = inj.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, Injector::Fired::Kind::kTrunc);
  EXPECT_EQ(fired[0].n, 2u);
}

TEST(FaultInjector, ScheduleTextIsByteIdenticalForIdenticalHistories) {
  const Plan plan = parse_spec("seed=9;delay=0.5:2;crash=1@call:4");
  const auto drive = [&plan] {
    Injector inj(plan, 3);
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
      inj.message_delay(0, 1, seq, 32);
      inj.message_delay(2, 1, seq, 32);
    }
    for (int i = 0; i < 3; ++i) inj.at_call(2, "send");
    try {
      for (int i = 0; i < 4; ++i) inj.at_call(1, "receive");
    } catch (const mpisim::RankKilledError&) {
    }
    return inj.schedule_text();
  };
  const std::string s1 = drive();
  const std::string s2 = drive();
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1.find("# fault schedule"), std::string::npos);
  EXPECT_NE(s1.find(plan.to_text()), std::string::npos);
  EXPECT_NE(s1.find("fired"), std::string::npos);
}

}  // namespace

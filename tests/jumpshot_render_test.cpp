#include "jumpshot/render.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "jumpshot/search.hpp"
#include "util/fs.hpp"
#include "util/prng.hpp"

namespace {

clog2::File demo_trace() {
  clog2::File f;
  f.nranks = 3;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "PI_Read", "red", "Line: %d"});
  f.records.emplace_back(clog2::StateDef{2, 20, 21, "PI_Write", "green", ""});
  f.records.emplace_back(clog2::EventDef{30, "MsgArrive", "yellow", ""});
  f.records.emplace_back(clog2::EventRec{0.10, 1, 10, "Line: 12"});
  f.records.emplace_back(clog2::EventRec{0.15, 1, 30, "Channel: C1"});
  f.records.emplace_back(clog2::EventRec{0.20, 1, 11, ""});
  f.records.emplace_back(clog2::EventRec{0.05, 0, 20, ""});
  f.records.emplace_back(clog2::EventRec{0.12, 0, 21, ""});
  clog2::MsgRec send;
  send.timestamp = 0.06;
  send.rank = 0;
  send.kind = clog2::MsgRec::Kind::kSend;
  send.partner = 1;
  send.tag = 3;
  send.size = 40;
  f.records.emplace_back(send);
  clog2::MsgRec recv = send;
  recv.timestamp = 0.15;
  recv.rank = 1;
  recv.kind = clog2::MsgRec::Kind::kRecv;
  recv.partner = 0;
  f.records.emplace_back(recv);
  return f;
}

TEST(Render, ProducesWellFormedSvgWithAllObjectKinds) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::RenderOptions opts;
  opts.title = "demo";
  const std::string svg = jumpshot::render_svg(file, opts);

  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);    // state rectangles
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // event bubbles
  EXPECT_NE(svg.find("marker-end"), std::string::npos);  // message arrow
  // Category colours appear (red and green themes).
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);
  EXPECT_NE(svg.find("#00ff00"), std::string::npos);
  // Popup (tooltip) contents.
  EXPECT_NE(svg.find("Line: 12"), std::string::npos);
  EXPECT_NE(svg.find("PI_Read"), std::string::npos);
  // Legend present.
  EXPECT_NE(svg.find("legend:"), std::string::npos);
}

TEST(Render, RankNamesUsedWhenProvided) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::RenderOptions opts;
  opts.rank_names = {"PI_MAIN", "worker", "C"};
  const std::string svg = jumpshot::render_svg(file, opts);
  EXPECT_NE(svg.find("PI_MAIN"), std::string::npos);
  EXPECT_NE(svg.find("worker"), std::string::npos);
}

TEST(Render, ZoomWindowCullsOutside) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::RenderOptions opts;
  opts.t0 = 0.0;
  opts.t1 = 0.04;  // before everything
  opts.draw_legend = false;
  const std::string svg = jumpshot::render_svg(file, opts);
  EXPECT_EQ(svg.find("PI_Read  rank"), std::string::npos);
  EXPECT_EQ(svg.find("<circle"), std::string::npos);
}

TEST(Render, PreviewStripingKicksInForDenseRows) {
  // Build a dense single-rank trace exceeding the preview threshold.
  clog2::File f;
  f.nranks = 1;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Busy", "gray", ""});
  for (int i = 0; i < 2000; ++i) {
    f.records.emplace_back(clog2::EventRec{i * 0.001, 0, 10, ""});
    f.records.emplace_back(clog2::EventRec{i * 0.001 + 0.0005, 0, 11, ""});
  }
  const auto file = slog2::convert(f);
  jumpshot::RenderOptions opts;
  opts.preview_threshold = 100;
  opts.draw_legend = false;
  const std::string striped = jumpshot::render_svg(file, opts);
  // Preview mode: no per-state tooltips, but an outline rect and stripes.
  EXPECT_EQ(striped.find("Busy  rank"), std::string::npos);
  EXPECT_NE(striped.find("fill='none'"), std::string::npos);

  opts.preview_threshold = 100000;
  const std::string full = jumpshot::render_svg(file, opts);
  EXPECT_NE(full.find("Busy  rank"), std::string::npos);
}

TEST(Render, EmptyFileStillRenders) {
  clog2::File f;
  f.nranks = 0;
  const auto file = slog2::convert(f);
  const std::string svg = jumpshot::render_svg(file);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(Render, WritesFile) {
  util::TempDir dir;
  const auto file = slog2::convert(demo_trace());
  jumpshot::render_to_file(dir.file("out.svg"), file);
  const auto text = util::read_text_file(dir.file("out.svg"));
  EXPECT_NE(text.find("<svg"), std::string::npos);
}

TEST(Render, XmlSpecialCharsEscapedInTooltips) {
  clog2::File f;
  f.nranks = 1;
  f.records.emplace_back(clog2::EventDef{30, "Odd<&>", "yellow", ""});
  f.records.emplace_back(clog2::EventRec{1.0, 0, 30, "a<b & c>\"d\""});
  const auto file = slog2::convert(f);
  const std::string svg = jumpshot::render_svg(file);
  EXPECT_EQ(svg.find("a<b"), std::string::npos);
  EXPECT_NE(svg.find("a&lt;b"), std::string::npos);
}

// --- windowed rendering through the Navigator --------------------------------

clog2::File dense_trace(int n) {
  util::SplitMix64 rng(17);
  clog2::File f;
  f.nranks = 4;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Work", "gray", ""});
  struct Timed {
    double t;
    clog2::Record rec;
  };
  std::vector<Timed> timed;
  for (int i = 0; i < n; ++i) {
    const int rank = static_cast<int>(rng.below(4));
    const double s = rng.uniform(0, 10);
    const double e = s + rng.uniform(1e-4, 1e-2);
    timed.push_back({s, clog2::EventRec{s, rank, 10, ""}});
    timed.push_back({e, clog2::EventRec{e, rank, 11, ""}});
  }
  std::sort(timed.begin(), timed.end(),
            [](const Timed& a, const Timed& b) { return a.t < b.t; });
  for (auto& t : timed) f.records.emplace_back(std::move(t.rec));
  return f;
}

TEST(RenderWindowed, NavigatorDecodesOnlyWindowFrames) {
  util::TempDir dir;
  slog2::ConvertOptions copts;
  copts.frame_size = 2048;  // many frames, so a window is a strict subset
  slog2::write_file(dir.file("t.slog2"), slog2::convert(dense_trace(4000), copts));

  slog2::Navigator nav(dir.file("t.slog2"));
  jumpshot::RenderOptions opts;
  opts.t0 = 4.9;
  opts.t1 = 5.1;
  const std::string svg = jumpshot::render_svg(nav, opts);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
  EXPECT_EQ(svg.find("preview-lod"), std::string::npos);
  EXPECT_GT(nav.frames_decoded(), 0u);
  EXPECT_LT(nav.frames_decoded(), nav.total_frames());
}

TEST(RenderWindowed, PreviewLodUnderBudgetDecodesNothing) {
  util::TempDir dir;
  slog2::ConvertOptions copts;
  copts.frame_size = 2048;
  slog2::write_file(dir.file("t.slog2"), slog2::convert(dense_trace(4000), copts));

  slog2::Navigator nav(dir.file("t.slog2"));
  jumpshot::RenderOptions opts;
  opts.lod_payload_budget = 1;  // every window exceeds this
  const std::string svg = jumpshot::render_svg(nav, opts);
  EXPECT_NE(svg.find("preview-lod"), std::string::npos);
  EXPECT_NE(svg.find("outline form"), std::string::npos);
  EXPECT_EQ(nav.frames_decoded(), 0u);
}

TEST(RenderWindowed, MatchesWholeFileDrawing) {
  // The Navigator path must draw the same states the whole-file renderer
  // draws for the same window (legend style differs, rectangles must not).
  util::TempDir dir;
  const auto file = slog2::convert(demo_trace());
  slog2::write_file(dir.file("t.slog2"), file);
  slog2::Navigator nav(dir.file("t.slog2"));

  jumpshot::RenderOptions opts;
  opts.draw_legend = false;
  const std::string whole = jumpshot::render_svg(file, opts);
  const std::string windowed = jumpshot::render_svg(nav, opts);
  const auto count = [](const std::string& svg, const char* needle) {
    std::size_t n = 0;
    for (auto p = svg.find(needle); p != std::string::npos;
         p = svg.find(needle, p + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count(whole, "<rect"), count(windowed, "<rect"));
  EXPECT_EQ(count(whole, "<circle"), count(windowed, "<circle"));
  EXPECT_EQ(count(whole, "marker-end"), count(windowed, "marker-end"));
}

// --- search ------------------------------------------------------------------

TEST(Search, FindsByCategoryName) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::SearchQuery q;
  q.needle = "pi_read";
  const auto hits = jumpshot::search(file, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].kind, jumpshot::SearchHit::Kind::kState);
  EXPECT_EQ(hits[0].rank, 1);
}

TEST(Search, FindsByPopupText) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::SearchQuery q;
  q.needle = "channel: c1";
  const auto hits = jumpshot::search(file, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].kind, jumpshot::SearchHit::Kind::kEvent);
}

TEST(Search, RankAndWindowFilters) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::SearchQuery q;
  q.rank = 0;
  auto hits = jumpshot::search(file, q);
  for (const auto& h : hits) EXPECT_EQ(h.rank, 0);

  jumpshot::SearchQuery win;
  win.t0 = 0.0;
  win.t1 = 0.04;
  EXPECT_TRUE(jumpshot::search(file, win).empty());
}

TEST(Search, ResultsSortedByTimeAndCapped) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::SearchQuery q;  // empty needle: everything
  q.max_results = 2;
  const auto hits = jumpshot::search(file, q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_LE(hits[0].start_time, hits[1].start_time);
}

TEST(Search, ArrowsSearchable) {
  const auto file = slog2::convert(demo_trace());
  jumpshot::SearchQuery q;
  q.needle = "message";
  const auto hits = jumpshot::search(file, q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].kind, jumpshot::SearchHit::Kind::kArrow);
  EXPECT_NE(hits[0].text.find("tag=3"), std::string::npos);
}

}  // namespace

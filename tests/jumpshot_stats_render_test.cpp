#include <gtest/gtest.h>

#include "jumpshot/render.hpp"
#include "jumpshot/stats.hpp"

namespace {

// Two ranks with very different busy times -> visible imbalance.
clog2::File imbalanced_trace() {
  clog2::File f;
  f.nranks = 2;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Work", "gray", ""});
  f.records.emplace_back(clog2::StateDef{2, 20, 21, "PI_Read", "red", ""});
  f.records.emplace_back(clog2::EventRec{0.0, 0, 10, ""});
  f.records.emplace_back(clog2::EventRec{9.0, 0, 11, ""});
  f.records.emplace_back(clog2::EventRec{0.0, 1, 20, ""});
  f.records.emplace_back(clog2::EventRec{1.0, 1, 21, ""});
  return f;
}

TEST(StatsRender, ProducesBarsAndImbalance) {
  const auto file = slog2::convert(imbalanced_trace());
  jumpshot::StatsRenderOptions opts;
  opts.title = "lab stats";
  const std::string svg = jumpshot::render_stats_svg(file, opts);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("lab stats"), std::string::npos);
  // Imbalance = max/mean = 9 / 5 = 1.8.
  EXPECT_NE(svg.find("1.800"), std::string::npos);
  // Both category colours appear as bars.
  EXPECT_NE(svg.find("#808080"), std::string::npos);  // gray
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);  // red
  // Category legend names.
  EXPECT_NE(svg.find("Work"), std::string::npos);
  EXPECT_NE(svg.find("PI_Read"), std::string::npos);
}

TEST(StatsRender, WindowRestriction) {
  const auto file = slog2::convert(imbalanced_trace());
  jumpshot::StatsRenderOptions opts;
  opts.t0 = 0.0;
  opts.t1 = 1.0;  // both ranks busy exactly 1 s here -> balanced
  const std::string svg = jumpshot::render_stats_svg(file, opts);
  EXPECT_NE(svg.find("= 1.000"), std::string::npos);
}

TEST(StatsRender, EmptyWindowStillRenders) {
  const auto file = slog2::convert(imbalanced_trace());
  jumpshot::StatsRenderOptions opts;
  opts.t0 = 100.0;
  opts.t1 = 200.0;
  const std::string svg = jumpshot::render_stats_svg(file, opts);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(StatsRender, RankNames) {
  const auto file = slog2::convert(imbalanced_trace());
  jumpshot::StatsRenderOptions opts;
  opts.rank_names = {"PI_MAIN", "Worker"};
  const std::string svg = jumpshot::render_stats_svg(file, opts);
  EXPECT_NE(svg.find("PI_MAIN"), std::string::npos);
  EXPECT_NE(svg.find("Worker"), std::string::npos);
}

}  // namespace

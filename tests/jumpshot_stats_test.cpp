#include "jumpshot/stats.hpp"

#include <gtest/gtest.h>

namespace {

// A trace with known structure:
//   rank 0: Outer [0, 10] containing Inner [2, 5]
//   rank 1: Outer [1, 4]
//   solo Mark at t=3 (rank 0) and t=6 (rank 1)
//   one message rank0 -> rank1 (t 3.5 -> 4.5)
clog2::File known_trace() {
  clog2::File f;
  f.nranks = 2;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Outer", "gray", ""});
  f.records.emplace_back(clog2::StateDef{2, 20, 21, "Inner", "red", ""});
  f.records.emplace_back(clog2::EventDef{30, "Mark", "yellow", ""});
  f.records.emplace_back(clog2::EventRec{0.0, 0, 10, ""});
  f.records.emplace_back(clog2::EventRec{1.0, 1, 10, ""});
  f.records.emplace_back(clog2::EventRec{2.0, 0, 20, ""});
  f.records.emplace_back(clog2::EventRec{3.0, 0, 30, ""});
  clog2::MsgRec send;
  send.timestamp = 3.5;
  send.rank = 0;
  send.kind = clog2::MsgRec::Kind::kSend;
  send.partner = 1;
  send.tag = 9;
  send.size = 256;
  f.records.emplace_back(send);
  f.records.emplace_back(clog2::EventRec{4.0, 1, 11, ""});
  clog2::MsgRec recv = send;
  recv.timestamp = 4.5;
  recv.rank = 1;
  recv.kind = clog2::MsgRec::Kind::kRecv;
  recv.partner = 0;
  f.records.emplace_back(recv);
  f.records.emplace_back(clog2::EventRec{5.0, 0, 21, ""});
  f.records.emplace_back(clog2::EventRec{6.0, 1, 30, ""});
  f.records.emplace_back(clog2::EventRec{10.0, 0, 11, ""});
  return f;
}

const jumpshot::LegendEntry* find(const std::vector<jumpshot::LegendEntry>& es,
                                  const std::string& name) {
  for (const auto& e : es)
    if (e.category.name == name) return &e;
  return nullptr;
}

TEST(Legend, CountsInclusiveExclusive) {
  const auto file = slog2::convert(known_trace());
  ASSERT_TRUE(file.stats.clean());
  const auto entries = jumpshot::legend(file);

  const auto* outer = find(entries, "Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  // Inclusive: (10-0) + (4-1) = 13; exclusive: 13 - nested Inner (3) = 10.
  EXPECT_NEAR(outer->inclusive, 13.0, 1e-9);
  EXPECT_NEAR(outer->exclusive, 10.0, 1e-9);

  const auto* inner = find(entries, "Inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 1u);
  EXPECT_NEAR(inner->inclusive, 3.0, 1e-9);
  EXPECT_NEAR(inner->exclusive, 3.0, 1e-9);  // nothing nested inside it

  const auto* mark = find(entries, "Mark");
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->count, 2u);
  EXPECT_DOUBLE_EQ(mark->inclusive, 0.0);

  const auto* arrow = find(entries, "message");
  ASSERT_NE(arrow, nullptr);
  EXPECT_EQ(arrow->count, 1u);
}

TEST(Legend, SortModes) {
  const auto file = slog2::convert(known_trace());
  const auto by_count = jumpshot::legend(file, jumpshot::LegendSort::kByCount);
  for (std::size_t i = 1; i < by_count.size(); ++i)
    EXPECT_GE(by_count[i - 1].count, by_count[i].count);
  const auto by_incl = jumpshot::legend(file, jumpshot::LegendSort::kByInclusive);
  for (std::size_t i = 1; i < by_incl.size(); ++i)
    EXPECT_GE(by_incl[i - 1].inclusive, by_incl[i].inclusive);
  const auto by_excl = jumpshot::legend(file, jumpshot::LegendSort::kByExclusive);
  for (std::size_t i = 1; i < by_excl.size(); ++i)
    EXPECT_GE(by_excl[i - 1].exclusive, by_excl[i].exclusive);
}

TEST(Legend, SiblingsDoNotSubtractFromEachOther) {
  // Two sequential (non-nested) Inner states inside one Outer.
  clog2::File f;
  f.nranks = 1;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Outer", "gray", ""});
  f.records.emplace_back(clog2::StateDef{2, 20, 21, "Inner", "red", ""});
  for (auto [t, id] : std::initializer_list<std::pair<double, int>>{
           {0.0, 10}, {1.0, 20}, {2.0, 21}, {3.0, 20}, {5.0, 21}, {10.0, 11}}) {
    f.records.emplace_back(clog2::EventRec{t, 0, id, ""});
  }
  const auto file = slog2::convert(f);
  const auto entries = jumpshot::legend(file);
  const auto* outer = find(entries, "Outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NEAR(outer->inclusive, 10.0, 1e-9);
  EXPECT_NEAR(outer->exclusive, 10.0 - 1.0 - 2.0, 1e-9);
  const auto* inner = find(entries, "Inner");
  EXPECT_NEAR(inner->inclusive, 3.0, 1e-9);
  EXPECT_NEAR(inner->exclusive, 3.0, 1e-9);
}

TEST(Legend, TextRendering) {
  const auto file = slog2::convert(known_trace());
  const auto text = jumpshot::legend_to_text(jumpshot::legend(file));
  EXPECT_NE(text.find("Outer"), std::string::npos);
  EXPECT_NE(text.find("incl"), std::string::npos);
}

TEST(WindowStats, ClipsToWindow) {
  const auto file = slog2::convert(known_trace());
  // Window [2, 5]: rank0 Outer contributes 3 s, Inner 3 s; rank1 Outer 2 s.
  const auto ws = jumpshot::window_stats(file, 2.0, 5.0);
  ASSERT_EQ(ws.ranks.size(), 2u);
  double rank0 = 0, rank1 = 0;
  for (const auto& [cat, secs] : ws.ranks[0].state_time) rank0 += secs;
  for (const auto& [cat, secs] : ws.ranks[1].state_time) rank1 += secs;
  EXPECT_NEAR(rank0, 3.0 + 3.0, 1e-9);
  EXPECT_NEAR(rank1, 2.0, 1e-9);
}

TEST(WindowStats, ArrowsCounted) {
  const auto file = slog2::convert(known_trace());
  const auto ws = jumpshot::window_stats(file, 0.0, 10.0);
  EXPECT_EQ(ws.ranks[0].arrows_out, 1u);
  EXPECT_EQ(ws.ranks[0].arrows_in, 0u);
  EXPECT_EQ(ws.ranks[1].arrows_in, 1u);
}

TEST(WindowStats, ImbalanceDetectsSkew) {
  // Rank 0 busy 13 s (Outer 10 + nested Inner 3), rank 1 busy 3 s:
  // imbalance = max / mean = 13 / 8.
  const auto file = slog2::convert(known_trace());
  const auto ws = jumpshot::window_stats(file, 0.0, 10.0);
  EXPECT_NEAR(ws.imbalance(), 13.0 / 8.0, 1e-9);
  EXPECT_GT(ws.imbalance(), 1.2);
}

TEST(WindowStats, BalancedLoadsNearOne) {
  clog2::File f;
  f.nranks = 3;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Work", "gray", ""});
  for (int r = 0; r < 3; ++r) {
    f.records.emplace_back(clog2::EventRec{0.0, r, 10, ""});
    f.records.emplace_back(clog2::EventRec{5.0, r, 11, ""});
  }
  const auto file = slog2::convert(f);
  const auto ws = jumpshot::window_stats(file, 0.0, 5.0);
  EXPECT_NEAR(ws.imbalance(), 1.0, 1e-9);
}

TEST(WindowStats, EmptyWindow) {
  const auto file = slog2::convert(known_trace());
  const auto ws = jumpshot::window_stats(file, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(ws.imbalance(), 1.0);
  for (const auto& r : ws.ranks) EXPECT_DOUBLE_EQ(r.total_state_time(), 0.0);
}

}  // namespace

#include "mpe/mpe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <thread>

#include "util/fs.hpp"

namespace {

using mpisim::Comm;
using mpisim::World;

World::Config cfg(int n) {
  World::Config c;
  c.nprocs = n;
  c.time_scale = 0.0;
  c.watchdog_seconds = 20.0;
  return c;
}

mpe::Logger::Options fast_opts() {
  mpe::Logger::Options o;
  o.merge_base_cost = 0.0;
  o.merge_cost_per_record = 0.0;
  return o;
}

TEST(MpeDefs, EventNumbersAreFreshAndIncreasing) {
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  const int a = log.get_event_number();
  const int b = log.get_event_number();
  EXPECT_GT(b, a);
  EXPECT_GT(a, 0);
}

TEST(MpeDefs, UnknownColorRejected) {
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  EXPECT_THROW(log.define_event(id, "x", "chartreuse-ish"), util::UsageError);
}

TEST(MpeDefs, UnallocatedIdRejected) {
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  EXPECT_THROW(log.define_event(999, "x", "red"), util::UsageError);
  EXPECT_THROW(log.define_state(998, 999, "s", "red"), util::UsageError);
}

TEST(MpeDefs, DoubleDefinitionRejected) {
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  log.define_event(id, "first", "red");
  EXPECT_THROW(log.define_event(id, "second", "green"), util::UsageError);
}

TEST(MpeDefs, StateNeedsDistinctStartEnd) {
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  EXPECT_THROW(log.define_state(id, id, "s", "red"), util::UsageError);
}

TEST(MpeLog, UndefinedEventIdRejected) {
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  EXPECT_THROW(w.run([&](Comm& c) {
    log.log_event(c, 12345);
    return 0;
  }),
               util::UsageError);
}

TEST(MpeLog, TextTruncatedTo40Bytes) {
  // The paper: optional event text is "limited to 40 bytes".
  util::TempDir dir;
  World w(cfg(1));
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  log.define_event(id, "note", "yellow");
  const std::string long_text(100, 'z');
  w.run([&](Comm& c) {
    log.log_event(c, id, long_text);
    log.finish_log(c, dir.file("t.clog2"));
    return 0;
  });
  const auto file = clog2::read_file(dir.file("t.clog2"));
  bool found = false;
  for (const auto& rec : file.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      EXPECT_EQ(e->text.size(), mpe::kMaxTextBytes);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(MpeLog, FinishProducesMergedTimeSortedFile) {
  util::TempDir dir;
  World w(cfg(4));
  mpe::Logger log(w, fast_opts());
  const int start = log.get_event_number();
  const int end = log.get_event_number();
  log.define_state(start, end, "Work", "gray");

  w.run([&](Comm& c) {
    for (int i = 0; i < 10; ++i) {
      log.log_event(c, start);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      log.log_event(c, end);
    }
    log.finish_log(c, dir.file("merged.clog2"));
    return 0;
  });

  const auto file = clog2::read_file(dir.file("merged.clog2"));
  EXPECT_EQ(file.nranks, 4);
  EXPECT_EQ(file.count<clog2::EventRec>(), 4u * 10 * 2);
  EXPECT_EQ(file.count<clog2::StateDef>(), 1u);

  // Events must be globally sorted by timestamp after the merge.
  double prev = -1.0;
  for (const auto& rec : file.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      EXPECT_GE(e->timestamp, prev);
      prev = e->timestamp;
    }
  }
}

TEST(MpeLog, BufferedCountsPerRank) {
  World w(cfg(2));
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  log.define_event(id, "e", "yellow");
  w.run([&](Comm& c) {
    for (int i = 0; i <= c.rank(); ++i) log.log_event(c, id);
    return 0;
  });
  EXPECT_EQ(log.buffered(0), 1u);
  EXPECT_EQ(log.buffered(1), 2u);
}

TEST(MpeLog, SendReceiveRecorded) {
  util::TempDir dir;
  World w(cfg(2));
  mpe::Logger log(w, fast_opts());
  w.run([&](Comm& c) {
    if (c.rank() == 0) {
      int v = 1;
      log.log_send(c, 1, 42, sizeof v);
      c.send(1, 42, &v, sizeof v);
    } else {
      int v = 0;
      c.recv(0, 42, &v, sizeof v);
      log.log_receive(c, 0, 42, sizeof v);
    }
    log.finish_log(c, dir.file("msg.clog2"));
    return 0;
  });
  const auto file = clog2::read_file(dir.file("msg.clog2"));
  ASSERT_EQ(file.count<clog2::MsgRec>(), 2u);
  int sends = 0, recvs = 0;
  for (const auto& rec : file.records) {
    if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      if (m->kind == clog2::MsgRec::Kind::kSend) {
        ++sends;
        EXPECT_EQ(m->rank, 0);
        EXPECT_EQ(m->partner, 1);
      } else {
        ++recvs;
        EXPECT_EQ(m->rank, 1);
        EXPECT_EQ(m->partner, 0);
      }
      EXPECT_EQ(m->tag, 42);
      EXPECT_EQ(m->size, sizeof(int));
    }
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
}

TEST(MpeLog, WrapUpTimeOnRankZeroOnly) {
  util::TempDir dir;
  World::Config c = cfg(3);
  World w(c);
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  log.define_event(id, "e", "yellow");
  std::array<double, 3> wrap{};
  w.run([&](Comm& comm) {
    log.log_event(comm, id);
    wrap[static_cast<std::size_t>(comm.rank())] =
        log.finish_log(comm, dir.file("w.clog2"));
    return 0;
  });
  EXPECT_GE(wrap[0], 0.0);
  EXPECT_EQ(wrap[1], 0.0);
  EXPECT_EQ(wrap[2], 0.0);
  EXPECT_TRUE(std::filesystem::exists(dir.file("w.clog2")));
}

// --- clock sync -------------------------------------------------------------

TEST(ClockFit, EmptyIsIdentity) {
  const auto fit = mpe::fit_clock({});
  EXPECT_DOUBLE_EQ(fit.apply(5.0), 5.0);
}

TEST(ClockFit, SingleSampleIsOffset) {
  const auto fit = mpe::fit_clock({clog2::SyncRec{1, 10.0, 9.5}});
  EXPECT_NEAR(fit.apply(10.0), 9.5, 1e-12);
  EXPECT_NEAR(fit.apply(20.0), 19.5, 1e-12);
}

TEST(ClockFit, TwoSamplesFitLine) {
  // local = ref * 1.001 + 0.5  =>  ref = (local - 0.5) / 1.001
  std::vector<clog2::SyncRec> samples;
  for (double ref : {0.0, 100.0}) {
    samples.push_back(clog2::SyncRec{1, ref * 1.001 + 0.5, ref});
  }
  const auto fit = mpe::fit_clock(samples);
  EXPECT_NEAR(fit.apply(50.0 * 1.001 + 0.5), 50.0, 1e-9);
}

TEST(ClockFit, DegenerateSamplesFallBack) {
  // Identical local times: slope is undefined; must not blow up.
  std::vector<clog2::SyncRec> samples = {clog2::SyncRec{1, 10.0, 9.0},
                                         clog2::SyncRec{1, 10.0, 9.2}};
  const auto fit = mpe::fit_clock(samples);
  EXPECT_TRUE(std::isfinite(fit.apply(10.0)));
}

TEST(MpeSync, CorrectsInjectedOffsets) {
  // Ranks get large injected clock offsets; events logged at the same true
  // moment (right after a barrier) must land at nearly equal corrected
  // timestamps in the merged file.
  util::TempDir dir;
  World::Config c = cfg(4);
  c.clock_max_offset = 0.5;  // huge: half a second
  c.seed = 1234;
  World w(c);
  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  log.define_event(id, "mark", "yellow");

  w.run([&](Comm& comm) {
    log.log_sync_clocks(comm);
    comm.barrier();
    log.log_event(comm, id);  // all ranks: same true instant (± scheduling)
    comm.barrier();
    log.log_sync_clocks(comm);
    log.finish_log(comm, dir.file("sync.clog2"));
    return 0;
  });

  const auto file = clog2::read_file(dir.file("sync.clog2"));
  std::vector<double> stamps;
  for (const auto& rec : file.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      stamps.push_back(e->timestamp);
    }
  }
  ASSERT_EQ(stamps.size(), 4u);
  const double spread =
      *std::max_element(stamps.begin(), stamps.end()) -
      *std::min_element(stamps.begin(), stamps.end());
  // Without correction the spread would be ~0.5 s; corrected it should be
  // bounded by scheduling noise (generous bound for loaded CI machines).
  EXPECT_LT(spread, 0.05);
}

TEST(MpeSync, WithoutSyncOffsetsRemainVisible) {
  // Negative control: skip log_sync_clocks and the drift shows through.
  util::TempDir dir;
  World::Config c = cfg(2);
  c.clock_max_offset = 0.5;
  c.seed = 77;
  World w(c);
  const double injected = w.clock().offset(1);
  ASSERT_GT(std::abs(injected), 0.01);

  mpe::Logger log(w, fast_opts());
  const int id = log.get_event_number();
  log.define_event(id, "mark", "yellow");
  w.run([&](Comm& comm) {
    comm.barrier();
    log.log_event(comm, id);
    log.finish_log(comm, dir.file("nosync.clog2"));
    return 0;
  });

  const auto file = clog2::read_file(dir.file("nosync.clog2"));
  std::vector<double> stamps;
  for (const auto& rec : file.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      stamps.push_back(e->timestamp);
    }
  }
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_GT(std::abs(stamps[1] - stamps[0]), std::abs(injected) * 0.5);
}

}  // namespace

// Odds and ends: clock quantization (the MPI_Wtime-resolution model behind
// the Equal-Drawables problem) and Logger option validation.
#include <gtest/gtest.h>

#include <cmath>

#include "mpe/mpe.hpp"
#include "mpisim/clock.hpp"
#include "util/fs.hpp"

namespace {

TEST(ClockQuantum, QuantizesReportedTime) {
  mpisim::VirtualClock clk(2, 0.0, 0.0, 1);
  clk.set_quantum(0.001);
  const double t = clk.now(0);
  EXPECT_DOUBLE_EQ(t, std::floor(t / 0.001) * 0.001);
  // Two immediate reads land in the same quantum.
  EXPECT_DOUBLE_EQ(clk.now(0), clk.now(1));
}

TEST(ClockQuantum, ZeroQuantumIsFullResolution) {
  mpisim::VirtualClock clk(1, 0.0, 0.0, 1);
  EXPECT_DOUBLE_EQ(clk.quantum(), 0.0);
  double a = clk.now(0);
  double b = a;
  // With nanosecond resolution two reads separated by work differ.
  for (int i = 0; i < 100000 && b == a; ++i) b = clk.now(0);
  EXPECT_NE(a, b);
}

TEST(ClockQuantum, BackdateShiftsOrigin) {
  mpisim::VirtualClock clk(1, 0.0, 0.0, 1);
  const double before = clk.now(0);
  clk.backdate(10.0);
  EXPECT_GE(clk.now(0), before + 9.9);
}

TEST(MpeOptions, SyncRoundsValidated) {
  mpisim::World::Config cfg;
  cfg.nprocs = 1;
  mpisim::World w(cfg);
  mpe::Logger::Options opts;
  opts.sync_rounds = 0;
  EXPECT_THROW(mpe::Logger(w, opts), util::UsageError);
}

TEST(MpeOptions, CustomTextCap) {
  mpisim::World::Config cfg;
  cfg.nprocs = 1;
  cfg.time_scale = 0;
  mpisim::World w(cfg);
  mpe::Logger::Options opts;
  opts.max_text_bytes = 8;
  opts.merge_base_cost = 0;
  opts.merge_cost_per_record = 0;
  mpe::Logger logger(w, opts);
  const int id = logger.get_event_number();
  logger.define_event(id, "e", "yellow");
  util::TempDir dir;
  w.run([&](mpisim::Comm& c) {
    logger.log_event(c, id, "0123456789ABCDEF");
    logger.finish_log(c, dir.file("t.clog2"));
    return 0;
  });
  const auto file = clog2::read_file(dir.file("t.clog2"));
  for (const auto& rec : file.records)
    if (const auto* e = std::get_if<clog2::EventRec>(&rec))
      EXPECT_EQ(e->text, "01234567");
}

}  // namespace

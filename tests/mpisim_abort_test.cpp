#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

#include "mpisim/world.hpp"

namespace {

using mpisim::Comm;
using mpisim::World;

World::Config cfg(int n) {
  World::Config c;
  c.nprocs = n;
  c.time_scale = 0.0;
  c.watchdog_seconds = 20.0;
  return c;
}

TEST(Abort, WakesBlockedReceivers) {
  World w(cfg(3));
  const auto result = w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.abort(77);  // never returns
    }
    // Ranks 1, 2 block forever; abort must wake them.
    int v = 0;
    c.recv(0, 99, &v, sizeof v);
    ADD_FAILURE() << "recv returned after abort";
    return 0;
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_code, 77);
}

TEST(Abort, WakesBarrier) {
  World w(cfg(3));
  const auto result = w.run([](Comm& c) {
    if (c.rank() == 2) c.abort(5);
    c.barrier();  // 0 and 1 wait here; 2 never arrives
    return 0;
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_code, 5);
}

TEST(Abort, SendAfterAbortThrows) {
  World w(cfg(2));
  std::atomic<bool> second_send_threw{false};
  const auto result = w.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.abort(1);
    } else {
      // Wait for the abort to land, then try to send.
      for (int i = 0; i < 1000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        try {
          int v = 0;
          c.send(0, 1, &v, sizeof v);
        } catch (const mpisim::AbortedError&) {
          second_send_threw = true;
          throw;
        }
      }
    }
    return 0;
  });
  EXPECT_TRUE(result.aborted);
  EXPECT_TRUE(second_send_threw.load());
}

TEST(Abort, UncaughtExceptionAbortsWorldAndRethrows) {
  World w(cfg(3));
  EXPECT_THROW(
      w.run([](Comm& c) -> int {
        if (c.rank() == 1) throw std::logic_error("rank 1 crashed");
        int v = 0;
        c.recv(1, 0, &v, sizeof v);  // others block; crash must free them
        return 0;
      }),
      std::logic_error);
}

TEST(Abort, WatchdogBreaksDeadlock) {
  World::Config c = cfg(2);
  c.watchdog_seconds = 0.2;
  World w(c);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      w.run([](Comm& comm) {
        // Classic head-to-head deadlock: both ranks receive first.
        int v = 0;
        comm.recv(1 - comm.rank(), 0, &v, sizeof v);
        return 0;
      }),
      mpisim::TimeoutError);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(dt, 5.0);  // terminated promptly, not hung
}

TEST(Abort, CleanRunNotAborted) {
  World w(cfg(2));
  const auto result = w.run([](Comm&) { return 0; });
  EXPECT_FALSE(result.aborted);
  EXPECT_FALSE(result.timed_out);
}

TEST(Abort, ComputeInterruptedByAbort) {
  World::Config c = cfg(2);
  c.cpu_cores = 1;
  c.time_scale = 1.0;
  World w(c);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = w.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      comm.abort(9);
    }
    comm.compute(0.05);   // rank 1 holds the core...
    comm.compute(100.0);  // ...then would sleep for 100 s without the abort
    return 0;
  });
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_TRUE(result.aborted);
  EXPECT_EQ(result.abort_code, 9);
  EXPECT_LT(dt, 10.0);
}

}  // namespace

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "mpisim/clock.hpp"
#include "mpisim/world.hpp"

namespace {

using mpisim::Comm;
using mpisim::VirtualClock;
using mpisim::World;

TEST(Clock, NoDriftMeansAllRanksAgree) {
  VirtualClock clk(4, 0.0, 0.0, 1);
  const double t = clk.true_time();
  for (int r = 0; r < 4; ++r) {
    EXPECT_NEAR(clk.to_local(r, t), t, 1e-12);
  }
}

TEST(Clock, RankZeroIsReference) {
  VirtualClock clk(4, 0.5, 1e-3, 99);
  EXPECT_DOUBLE_EQ(clk.offset(0), 0.0);
  EXPECT_DOUBLE_EQ(clk.skew(0), 0.0);
}

TEST(Clock, DriftBoundsRespected) {
  const double max_off = 0.25, max_skew = 1e-4;
  VirtualClock clk(16, max_off, max_skew, 7);
  for (int r = 1; r < 16; ++r) {
    EXPECT_LE(std::abs(clk.offset(r)), max_off);
    EXPECT_LE(std::abs(clk.skew(r)), max_skew);
  }
}

TEST(Clock, DriftIsDeterministicInSeed) {
  VirtualClock a(8, 0.1, 1e-4, 42);
  VirtualClock b(8, 0.1, 1e-4, 42);
  VirtualClock c(8, 0.1, 1e-4, 43);
  bool any_differs = false;
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(a.offset(r), b.offset(r));
    EXPECT_DOUBLE_EQ(a.skew(r), b.skew(r));
    if (a.offset(r) != c.offset(r)) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Clock, LocalModelIsOffsetPlusSkew) {
  VirtualClock clk(2, 0.5, 1e-2, 3);
  const double t = 2.0;
  EXPECT_NEAR(clk.to_local(1, t), t * (1.0 + clk.skew(1)) + clk.offset(1), 1e-12);
}

TEST(Clock, MonotonicWithinRank) {
  VirtualClock clk(2, 0.3, 1e-4, 5);
  double prev = clk.now(1);
  for (int i = 0; i < 100; ++i) {
    const double t = clk.now(1);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Clock, WtimeAdvances) {
  World::Config c;
  c.nprocs = 1;
  c.time_scale = 0.0;
  World w(c);
  w.run([](Comm& comm) {
    const double t0 = comm.wtime();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const double t1 = comm.wtime();
    EXPECT_GT(t1, t0);
    EXPECT_GE(t1 - t0, 0.004);
    return 0;
  });
}

TEST(Clock, InjectedDriftVisibleThroughComm) {
  World::Config c;
  c.nprocs = 2;
  c.time_scale = 0.0;
  c.clock_max_offset = 0.5;
  c.seed = 11;
  World w(c);
  const double off1 = w.clock().offset(1);
  ASSERT_NE(off1, 0.0);
  w.run([off1](Comm& comm) {
    if (comm.rank() == 1) {
      const double local = comm.wtime();
      const double truth = comm.true_time();
      // local ≈ truth + offset (skew is zero here)
      EXPECT_NEAR(local - truth, off1, 1e-3);
    }
    return 0;
  });
}

}  // namespace

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/world.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::Op;
using mpisim::World;

World::Config cfg(int n) {
  World::Config c;
  c.nprocs = n;
  c.time_scale = 0.0;
  c.watchdog_seconds = 20.0;
  return c;
}

// Parameterized over world size: collectives must work for 1..8 ranks.
class CollectivesBySize : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesBySize, ::testing::Values(1, 2, 3, 5, 8));

TEST_P(CollectivesBySize, Bcast) {
  const int n = GetParam();
  World w(cfg(n));
  w.run([](Comm& c) {
    std::vector<int> data(16, -1);
    if (c.rank() == 0)
      for (int i = 0; i < 16; ++i) data[static_cast<std::size_t>(i)] = i * i;
    c.bcast(0, data.data(), data.size() * sizeof(int));
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(data[static_cast<std::size_t>(i)], i * i);
    }
    return 0;
  });
}

TEST_P(CollectivesBySize, Gather) {
  const int n = GetParam();
  World w(cfg(n));
  w.run([n](Comm& c) {
    const int mine = c.rank() + 1000;
    std::vector<int> all(static_cast<std::size_t>(n), -1);
    c.gather(0, &mine, sizeof mine, all.data());
    if (c.rank() == 0) {
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 1000);
      }
    }
    return 0;
  });
}

TEST_P(CollectivesBySize, Scatter) {
  const int n = GetParam();
  World w(cfg(n));
  w.run([n](Comm& c) {
    std::vector<int> src;
    if (c.rank() == 0) {
      src.resize(static_cast<std::size_t>(n));
      std::iota(src.begin(), src.end(), 500);
    }
    int mine = -1;
    c.scatter(0, src.data(), sizeof mine, &mine);
    EXPECT_EQ(mine, 500 + c.rank());
    return 0;
  });
}

TEST_P(CollectivesBySize, ReduceSumInt) {
  const int n = GetParam();
  World w(cfg(n));
  w.run([n](Comm& c) {
    const int mine = c.rank() + 1;
    int total = 0;
    c.reduce(0, Op::kSum, Datatype::kInt, &mine, &total, 1);
    if (c.rank() == 0) EXPECT_EQ(total, n * (n + 1) / 2);
    return 0;
  });
}

TEST_P(CollectivesBySize, AllreduceMaxDouble) {
  const int n = GetParam();
  World w(cfg(n));
  w.run([n](Comm& c) {
    const double mine = static_cast<double>(c.rank());
    double top = -1;
    c.allreduce(Op::kMax, Datatype::kDouble, &mine, &top, 1);
    EXPECT_DOUBLE_EQ(top, static_cast<double>(n - 1));
    return 0;
  });
}

TEST_P(CollectivesBySize, Barrier) {
  const int n = GetParam();
  World w(cfg(n));
  w.run([](Comm& c) {
    for (int round = 0; round < 5; ++round) c.barrier();
    return 0;
  });
}

TEST(Collectives, ReduceVectorElementwise) {
  World w(cfg(4));
  w.run([](Comm& c) {
    std::vector<long> mine(8);
    for (std::size_t i = 0; i < mine.size(); ++i)
      mine[i] = static_cast<long>(i) * (c.rank() + 1);
    std::vector<long> out(8, 0);
    c.reduce(0, Op::kSum, Datatype::kLong, mine.data(), out.data(), mine.size());
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], static_cast<long>(i) * (1 + 2 + 3 + 4));
      }
    }
    return 0;
  });
}

TEST(Collectives, ReduceMinMaxProd) {
  World w(cfg(3));
  w.run([](Comm& c) {
    const int mine = c.rank() + 2;  // 2, 3, 4
    int mn = 0, mx = 0, pr = 0;
    c.reduce(0, Op::kMin, Datatype::kInt, &mine, &mn, 1);
    c.reduce(0, Op::kMax, Datatype::kInt, &mine, &mx, 1);
    c.reduce(0, Op::kProd, Datatype::kInt, &mine, &pr, 1);
    if (c.rank() == 0) {
      EXPECT_EQ(mn, 2);
      EXPECT_EQ(mx, 4);
      EXPECT_EQ(pr, 24);
    }
    return 0;
  });
}

TEST(Collectives, BitwiseOpsOnIntegers) {
  World w(cfg(3));
  w.run([](Comm& c) {
    const unsigned mine = 1u << c.rank();
    unsigned ored = 0;
    c.reduce(0, Op::kBor, Datatype::kUnsigned, &mine, &ored, 1);
    if (c.rank() == 0) EXPECT_EQ(ored, 0b111u);
    return 0;
  });
}

TEST(Collectives, LogicalOpsRejectedOnFloats) {
  double a = 1.0;
  double b = 0.0;
  EXPECT_THROW(mpisim::reduce_apply(Op::kLand, Datatype::kDouble, &a, &b, 1),
               util::UsageError);
}

TEST(Collectives, RootsOtherThanZero) {
  World w(cfg(4));
  w.run([](Comm& c) {
    int v = c.rank() == 2 ? 99 : 0;
    c.bcast(2, &v, sizeof v);
    EXPECT_EQ(v, 99);

    const int mine = c.rank();
    int sum = -1;
    c.reduce(3, Op::kSum, Datatype::kInt, &mine, &sum, 1);
    if (c.rank() == 3) EXPECT_EQ(sum, 0 + 1 + 2 + 3);
    return 0;
  });
}

TEST(Collectives, InterleavedWithP2P) {
  // Collective traffic must never match user receives (reserved tags).
  World w(cfg(3));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int v = 7;
      c.send(1, 0, &v, sizeof v);  // user tag 0
    }
    int b = c.rank() == 0 ? 123 : 0;
    c.bcast(0, &b, sizeof b);
    EXPECT_EQ(b, 123);
    if (c.rank() == 1) {
      int v = 0;
      c.recv(0, 0, &v, sizeof v);
      EXPECT_EQ(v, 7);
    }
    return 0;
  });
}

TEST(Collectives, DatatypeSizes) {
  EXPECT_EQ(mpisim::datatype_size(Datatype::kByte), 1u);
  EXPECT_EQ(mpisim::datatype_size(Datatype::kInt), sizeof(int));
  EXPECT_EQ(mpisim::datatype_size(Datatype::kDouble), sizeof(double));
  EXPECT_EQ(mpisim::datatype_size(Datatype::kLongLong), sizeof(long long));
}

}  // namespace

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "mpisim/cpu.hpp"
#include "mpisim/world.hpp"

namespace {

using mpisim::CpuModel;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

TEST(Cpu, ZeroScaleIsFree) {
  CpuModel cpu(1, 0.0);
  const double dt = wall_seconds([&] { cpu.execute(100.0); });
  EXPECT_LT(dt, 0.05);
  EXPECT_DOUBLE_EQ(cpu.total_charged(), 100.0);
}

TEST(Cpu, ScaledSleepDuration) {
  CpuModel cpu(1, 0.01);  // 1 virtual s = 10 ms wall
  const double dt = wall_seconds([&] { cpu.execute(2.0); });
  EXPECT_GE(dt, 0.018);
  EXPECT_LT(dt, 0.5);
}

TEST(Cpu, ParallelSpeedupWithEnoughCores) {
  // 4 tasks x 20 ms on 4 cores should take ~20 ms, not ~80 ms.
  CpuModel cpu(4, 1.0);
  const double dt = wall_seconds([&] {
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i) ts.emplace_back([&] { cpu.execute(0.02); });
    for (auto& t : ts) t.join();
  });
  EXPECT_LT(dt, 0.06);
}

TEST(Cpu, SerializationWhenOversubscribed) {
  // 4 tasks x 20 ms on 1 core must take ~80 ms: core tokens serialize.
  CpuModel cpu(1, 1.0);
  const double dt = wall_seconds([&] {
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i) ts.emplace_back([&] { cpu.execute(0.02); });
    for (auto& t : ts) t.join();
  });
  EXPECT_GE(dt, 0.07);
}

TEST(Cpu, DisplacementShape) {
  // The paper's native-log rank displaces a worker: K compute-bound tasks on
  // K cores run at full speed, but an extra occupant slows them down. Use a
  // busy interval large enough to dominate thread-startup noise on a loaded
  // CI box.
  const double busy = 0.05;
  CpuModel full(2, 1.0);
  const double without_extra = wall_seconds([&] {
    std::vector<std::thread> ts;
    for (int i = 0; i < 2; ++i) ts.emplace_back([&] { full.execute(busy); });
    for (auto& t : ts) t.join();
  });

  CpuModel contended(2, 1.0);
  const double with_extra = wall_seconds([&] {
    std::vector<std::thread> ts;
    for (int i = 0; i < 3; ++i) ts.emplace_back([&] { contended.execute(busy); });
    for (auto& t : ts) t.join();
  });
  // Ideal: 0.05 s vs 0.10 s. Accept generous noise either way.
  EXPECT_GT(with_extra, without_extra * 1.4);
  EXPECT_GE(with_extra, 0.09);
}

TEST(Cpu, TotalChargedAccumulates) {
  CpuModel cpu(2, 0.0);
  cpu.execute(1.5);
  cpu.execute(2.5);
  EXPECT_DOUBLE_EQ(cpu.total_charged(), 4.0);
}

TEST(Cpu, NegativeCostRejected) {
  CpuModel cpu(1, 0.0);
  EXPECT_THROW(cpu.execute(-1.0), util::UsageError);
}

TEST(Cpu, ZeroCoresRejected) { EXPECT_THROW(CpuModel(0, 1.0), util::UsageError); }

TEST(Cpu, ShutdownReleasesWaiters) {
  CpuModel cpu(1, 1.0);
  std::thread hog([&] { cpu.execute(0.5); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread waiter([&] { cpu.execute(10.0); });  // would block for a long time
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cpu.shutdown();
  waiter.join();  // must return promptly after shutdown
  hog.join();
  SUCCEED();
}

}  // namespace

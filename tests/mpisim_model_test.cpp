// Substrate model knobs: bandwidth-dependent delivery, watchdog disabled,
// large payload stress, and mixed-traffic stress with every primitive.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpisim/world.hpp"

namespace {

using mpisim::Comm;
using mpisim::World;

TEST(Model, BandwidthDelaysLargeMessages) {
  World::Config cfg;
  cfg.nprocs = 2;
  cfg.time_scale = 0;
  cfg.msg_bandwidth = 1e6;  // 1 MB/s: 100 KB takes ~100 ms
  cfg.watchdog_seconds = 20;
  World w(cfg);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::uint8_t> big(100 * 1000, 7);
      std::vector<std::uint8_t> tiny(8, 1);
      c.send(1, 1, big.data(), big.size());
      c.send(1, 2, tiny.data(), tiny.size());
    } else {
      // The tiny message becomes deliverable long before the big one.
      const double t0 = c.true_time();
      std::vector<std::uint8_t> tiny(8);
      c.recv(0, 2, tiny.data(), tiny.size());
      const double t_tiny = c.true_time() - t0;
      std::vector<std::uint8_t> big(100 * 1000);
      c.recv(0, 1, big.data(), big.size());
      const double t_big = c.true_time() - t0;
      EXPECT_LT(t_tiny, 0.05);
      EXPECT_GE(t_big, 0.08);
      EXPECT_EQ(big[12345], 7);
    }
    return 0;
  });
}

TEST(Model, WatchdogDisabled) {
  // watchdog_seconds = 0: no watchdog thread; a normal job completes fine.
  World::Config cfg;
  cfg.nprocs = 2;
  cfg.time_scale = 0;
  cfg.watchdog_seconds = 0;
  World w(cfg);
  const auto result = w.run([](Comm& c) {
    if (c.rank() == 0) {
      int v = 5;
      c.send(1, 0, &v, sizeof v);
    } else {
      int v = 0;
      c.recv(0, 0, &v, sizeof v);
    }
    return 0;
  });
  EXPECT_FALSE(result.aborted);
}

TEST(Model, MultiMegabytePayload) {
  World::Config cfg;
  cfg.nprocs = 2;
  cfg.time_scale = 0;
  cfg.watchdog_seconds = 30;
  World w(cfg);
  w.run([](Comm& c) {
    constexpr std::size_t kN = 4 * 1024 * 1024;
    if (c.rank() == 0) {
      std::vector<std::uint8_t> data(kN);
      for (std::size_t i = 0; i < kN; ++i)
        data[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
      c.send(1, 3, data.data(), data.size());
    } else {
      auto [st, payload] = c.recv_any_size(0, 3);
      EXPECT_EQ(payload.size(), kN);
      if (payload.size() != kN) return 1;
      bool ok = true;
      for (std::size_t i = 0; i < kN; ++i)
        ok &= payload[i] == static_cast<std::uint8_t>(i * 2654435761u >> 24);
      EXPECT_TRUE(ok);
    }
    return 0;
  });
}

TEST(Model, MixedTrafficStress) {
  // Every primitive in one job, repeated: p2p, wildcards, probes,
  // collectives, barrier, compute — a smoke screen for cross-feature races.
  constexpr int kRanks = 6;
  constexpr int kRounds = 30;
  World::Config cfg;
  cfg.nprocs = kRanks;
  cfg.time_scale = 0;
  cfg.watchdog_seconds = 60;
  World w(cfg);
  const auto result = w.run([](Comm& c) {
    for (int round = 0; round < kRounds; ++round) {
      // Ring hop.
      const int next = (c.rank() + 1) % kRanks;
      const int prev = (c.rank() + kRanks - 1) % kRanks;
      int token = c.rank() * 1000 + round;
      c.send(next, 100 + round, &token, sizeof token);
      int got = 0;
      c.recv(prev, 100 + round, &got, sizeof got);
      EXPECT_EQ(got, prev * 1000 + round);

      // Collective mix.
      int root_val = c.rank() == round % kRanks ? round : -1;
      c.bcast(round % kRanks, &root_val, sizeof root_val);
      EXPECT_EQ(root_val, round);

      long mine = c.rank() + round;
      long sum = 0;
      c.allreduce(mpisim::Op::kSum, mpisim::Datatype::kLong, &mine, &sum, 1);
      EXPECT_EQ(sum, static_cast<long>(kRanks * round + kRanks * (kRanks - 1) / 2));

      c.barrier();
      c.compute(0.0);
    }
    return 0;
  });
  EXPECT_FALSE(result.aborted);
  EXPECT_GE(w.messages_delivered(), static_cast<std::uint64_t>(kRanks * kRounds));
}

TEST(Model, AnySourceFairnessUnderLoad) {
  // Many senders flooding one receiver through ANY_SOURCE: every message
  // must arrive exactly once (no loss, no duplication).
  constexpr int kRanks = 5;
  constexpr int kEach = 500;
  World::Config cfg;
  cfg.nprocs = kRanks;
  cfg.time_scale = 0;
  cfg.watchdog_seconds = 60;
  World w(cfg);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      long long sum = 0;
      for (int i = 0; i < (kRanks - 1) * kEach; ++i) {
        int v = 0;
        c.recv(mpisim::kAnySource, mpisim::kAnyTag, &v, sizeof v);
        sum += v;
      }
      // Each sender r sends r*kEach + (0..kEach-1).
      long long expect = 0;
      for (int r = 1; r < kRanks; ++r)
        for (int i = 0; i < kEach; ++i) expect += r * kEach + i;
      EXPECT_EQ(sum, expect);
    } else {
      for (int i = 0; i < kEach; ++i) {
        const int v = c.rank() * kEach + i;
        c.send(0, i % 7, &v, sizeof v);
      }
    }
    return 0;
  });
}

}  // namespace

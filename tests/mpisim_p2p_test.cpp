#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <numeric>
#include <vector>

#include "mpisim/world.hpp"
#include "util/prng.hpp"

namespace {

using mpisim::Comm;
using mpisim::World;

World::Config cfg(int n) {
  World::Config c;
  c.nprocs = n;
  c.time_scale = 0.0;  // compute costs are free in unit tests
  c.watchdog_seconds = 20.0;
  return c;
}

TEST(P2P, SimpleSendRecv) {
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int v = 42;
      c.send(1, 7, &v, sizeof v);
    } else {
      int v = 0;
      const auto st = c.recv(0, 7, &v, sizeof v);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, sizeof(int));
    }
    return 0;
  });
  EXPECT_EQ(w.messages_delivered(), 1u);
}

TEST(P2P, NonOvertakingPerTag) {
  // Messages with the same (src, dst, tag) must arrive in send order.
  World w(cfg(2));
  w.run([](Comm& c) {
    constexpr int kN = 200;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send(1, 3, &i, sizeof i);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        c.recv(0, 3, &v, sizeof v);
        EXPECT_EQ(v, i);
      }
    }
    return 0;
  });
}

TEST(P2P, TagSelectivityOutOfOrder) {
  // A receive for tag B must skip an earlier message with tag A.
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int a = 1, b = 2;
      c.send(1, 10, &a, sizeof a);
      c.send(1, 20, &b, sizeof b);
    } else {
      int v = 0;
      c.recv(0, 20, &v, sizeof v);
      EXPECT_EQ(v, 2);
      c.recv(0, 10, &v, sizeof v);
      EXPECT_EQ(v, 1);
    }
    return 0;
  });
}

TEST(P2P, AnySourceReceivesFromEveryone) {
  static constexpr int kRanks = 6;
  World w(cfg(kRanks));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<bool> seen(kRanks, false);
      for (int i = 1; i < kRanks; ++i) {
        int v = 0;
        const auto st = c.recv(mpisim::kAnySource, 5, &v, sizeof v);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_FALSE(seen[static_cast<std::size_t>(st.source)]);
        seen[static_cast<std::size_t>(st.source)] = true;
      }
    } else {
      int v = c.rank() * 100;
      c.send(0, 5, &v, sizeof v);
    }
    return 0;
  });
}

TEST(P2P, AnyTag) {
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      int v = 9;
      c.send(1, 77, &v, sizeof v);
    } else {
      int v = 0;
      const auto st = c.recv(0, mpisim::kAnyTag, &v, sizeof v);
      EXPECT_EQ(st.tag, 77);
      EXPECT_EQ(v, 9);
    }
    return 0;
  });
}

TEST(P2P, ZeroLengthMessage) {
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, nullptr, 0);
    } else {
      const auto st = c.recv(0, 1, nullptr, 0);
      EXPECT_EQ(st.count, 0u);
    }
    return 0;
  });
}

TEST(P2P, OversizedMessageThrows) {
  World w(cfg(2));
  EXPECT_THROW(
      w.run([](Comm& c) {
        if (c.rank() == 0) {
          std::int64_t v = 1;
          c.send(1, 1, &v, sizeof v);
        } else {
          std::int8_t small = 0;
          c.recv(0, 1, &small, sizeof small);
        }
        return 0;
      }),
      util::UsageError);
}

TEST(P2P, RecvAnySize) {
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<double> xs(137, 2.5);
      c.send(1, 4, xs.data(), xs.size() * sizeof(double));
    } else {
      auto [st, payload] = c.recv_any_size(0, 4);
      EXPECT_EQ(payload.size(), 137 * sizeof(double));
      double x;
      std::memcpy(&x, payload.data(), sizeof x);
      EXPECT_DOUBLE_EQ(x, 2.5);
    }
    return 0;
  });
}

TEST(P2P, ProbeThenRecv) {
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::vector<int> xs(50);
      std::iota(xs.begin(), xs.end(), 0);
      c.send(1, 8, xs.data(), xs.size() * sizeof(int));
    } else {
      const auto st = c.probe(0, 8);
      EXPECT_EQ(st.count, 50 * sizeof(int));
      std::vector<int> xs(st.count / sizeof(int));
      c.recv(0, 8, xs.data(), st.count);
      EXPECT_EQ(xs[49], 49);
    }
    return 0;
  });
}

TEST(P2P, IprobeNonBlocking) {
  World w(cfg(2));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      // Nothing queued yet: iprobe must return nullopt, not block.
      EXPECT_FALSE(c.iprobe(1, 9).has_value());
      int v = 5;
      c.send(1, 9, &v, sizeof v);
    } else {
      // Wait until the message is visible, then iprobe sees it.
      (void)c.probe(0, 9);
      const auto st = c.iprobe(0, 9);
      EXPECT_TRUE(st.has_value());
      if (st) EXPECT_EQ(st->count, sizeof(int));
      int v = 0;
      c.recv(0, 9, &v, sizeof v);
      EXPECT_EQ(v, 5);
    }
    return 0;
  });
}

TEST(P2P, SendToSelf) {
  World w(cfg(1));
  w.run([](Comm& c) {
    int v = 11;
    c.send(0, 2, &v, sizeof v);
    int got = 0;
    c.recv(0, 2, &got, sizeof got);
    EXPECT_EQ(got, 11);
    return 0;
  });
}

TEST(P2P, InvalidDestinationThrows) {
  World w(cfg(2));
  EXPECT_THROW(
      w.run([](Comm& c) {
        if (c.rank() == 0) {
          int v = 0;
          c.send(5, 1, &v, sizeof v);
        }
        return 0;
      }),
      util::UsageError);
}

TEST(P2P, ManyToOneStress) {
  static constexpr int kRanks = 8;
  static constexpr int kPerRank = 300;
  World w(cfg(kRanks));
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      std::map<int, int> counts;
      long long sum = 0;
      for (int i = 0; i < (kRanks - 1) * kPerRank; ++i) {
        int v = 0;
        const auto st = c.recv(mpisim::kAnySource, mpisim::kAnyTag, &v, sizeof v);
        counts[st.source]++;
        sum += v;
      }
      for (int r = 1; r < kRanks; ++r) EXPECT_EQ(counts[r], kPerRank);
      // Each rank sends 0..kPerRank-1.
      EXPECT_EQ(sum, static_cast<long long>(kRanks - 1) * kPerRank * (kPerRank - 1) / 2);
    } else {
      for (int i = 0; i < kPerRank; ++i) c.send(0, c.rank(), &i, sizeof i);
    }
    return 0;
  });
  EXPECT_EQ(w.messages_delivered(), static_cast<std::uint64_t>((kRanks - 1) * kPerRank));
}

TEST(P2P, MessageLatencyGivesArrowsDuration) {
  World::Config c = cfg(2);
  c.msg_latency = 0.02;  // 20 ms wall
  World w(c);
  w.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int ready = 0;
      comm.recv(1, 2, &ready, sizeof ready);
      int v = 1;
      comm.send(1, 1, &v, sizeof v);
    } else {
      // Handshake first so the timed send happens causally after t0 — without
      // it, this thread starting >latency after rank 0's send measures ~0.
      const double t0 = comm.true_time();
      int ready = 7;
      comm.send(0, 2, &ready, sizeof ready);
      int v = 0;
      comm.recv(0, 1, &v, sizeof v);
      const double dt = comm.true_time() - t0;
      EXPECT_GE(dt, 0.015);  // received no earlier than the latency model allows
    }
    return 0;
  });
}

TEST(P2P, ExitCodesReported) {
  World w(cfg(3));
  const auto result = w.run([](Comm& c) { return c.rank() * 10; });
  ASSERT_EQ(result.exit_codes.size(), 3u);
  EXPECT_EQ(result.exit_codes[0], 0);
  EXPECT_EQ(result.exit_codes[1], 10);
  EXPECT_EQ(result.exit_codes[2], 20);
  EXPECT_FALSE(result.aborted);
}

TEST(P2P, WorldRunsOnlyOnce) {
  World w(cfg(1));
  w.run([](Comm&) { return 0; });
  EXPECT_THROW(w.run([](Comm&) { return 0; }), util::UsageError);
}

TEST(P2P, CurrentCommVisibleInsideRankThread) {
  World w(cfg(2));
  w.run([](Comm& c) {
    EXPECT_EQ(World::current(), &c);
    return 0;
  });
  EXPECT_EQ(World::current(), nullptr);
}

}  // namespace

// Tests for the kTasks execution substrate: fiber-per-rank scheduling,
// virtual time, deterministic schedule order, instant deadlock detection,
// spawn-failure cleanup (both substrates), and the abort-wakeup regression
// suite for predicate-checked waits.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "mpisim/fault_hook.hpp"
#include "mpisim/world.hpp"

namespace {

using mpisim::Comm;
using mpisim::ExecMode;
using mpisim::World;

World::Config tasks_cfg(int n) {
  World::Config c;
  c.nprocs = n;
  c.exec = ExecMode::kTasks;
  c.time_scale = 0.0;
  c.watchdog_seconds = 20.0;
  return c;
}

World::Config threads_cfg(int n) {
  World::Config c;
  c.nprocs = n;
  c.time_scale = 0.0;
  c.watchdog_seconds = 20.0;
  return c;
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(MpisimTasks, SimpleSendRecv) {
  World w(tasks_cfg(2));
  auto r = w.run([](Comm& c) {
    if (c.rank() == 0) {
      int v = 42;
      c.send(1, 7, &v, sizeof v);
    } else {
      int v = 0;
      const auto st = c.recv(0, 7, &v, sizeof v);
      EXPECT_EQ(v, 42);
      EXPECT_EQ(st.source, 0);
    }
    return c.rank() + 10;
  });
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.exit_codes, (std::vector<int>{10, 11}));
  EXPECT_EQ(w.messages_delivered(), 1u);
}

TEST(MpisimTasks, RingWithLatencyAtFiveHundredRanks) {
  // A world this size cannot even be attempted thread-per-rank on most
  // configurations; under tasks it is a subsecond unit test.
  constexpr int kN = 500;
  auto cfg = tasks_cfg(kN);
  cfg.msg_latency = 0.001;  // in-flight waits become virtual timers
  World w(cfg);
  auto r = w.run([](Comm& c) {
    const int n = c.size();
    int token = c.rank();
    for (int round = 0; round < 3; ++round) {
      c.send((c.rank() + 1) % n, 5, &token, sizeof token);
      c.recv((c.rank() + n - 1) % n, 5, &token, sizeof token);
    }
    return token == (c.rank() + n - 3) % n ? 0 : 1;
  });
  EXPECT_FALSE(r.aborted);
  for (int code : r.exit_codes) EXPECT_EQ(code, 0);
  EXPECT_EQ(w.messages_delivered(), 3u * kN);
}

TEST(MpisimTasks, CollectivesUnderTasks) {
  World w(tasks_cfg(64));
  w.run([](Comm& c) {
    int v = c.rank();
    int sum = 0;
    c.allreduce(mpisim::Op::kSum, mpisim::Datatype::kInt, &v, &sum, 1);
    EXPECT_EQ(sum, 64 * 63 / 2);
    int root_val = c.rank() == 3 ? 99 : 0;
    c.bcast(3, &root_val, sizeof root_val);
    EXPECT_EQ(root_val, 99);
    c.barrier();
    return 0;
  });
}

TEST(MpisimTasks, StartFinishAdoptsCallerAsRankZero) {
  World w(tasks_cfg(4));
  Comm& c0 = w.start([](Comm& c) {
    int v = 0;
    c.recv(0, 1, &v, sizeof v);
    EXPECT_EQ(v, c.rank() * 2);
    c.send(0, 2, &v, sizeof v);
    return 0;
  });
  EXPECT_EQ(c0.rank(), 0);
  EXPECT_EQ(World::current(), &c0);
  int total = 0;
  for (int r = 1; r < 4; ++r) {
    int v = r * 2;
    c0.send(r, 1, &v, sizeof v);
  }
  for (int r = 1; r < 4; ++r) {
    int v = 0;
    c0.recv(mpisim::kAnySource, 2, &v, sizeof v);
    total += v;
  }
  auto res = w.finish();
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(total, 2 + 4 + 6);
  EXPECT_EQ(World::current(), nullptr);
}

TEST(MpisimTasks, ChargedComputeRetiresInVirtualTime) {
  auto cfg = tasks_cfg(8);
  cfg.time_scale = 1.0;  // would cost wall seconds under threads
  cfg.cpu_cores = 2;
  World w(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  w.run([](Comm& c) {
    const double before = c.true_time();
    c.compute(1.0);  // 8 ranks x 1 s on 2 cores = 4 s of machine time
    EXPECT_GE(c.true_time() - before, 1.0);
    return 0;
  });
  // All of it simulated: the run must take nowhere near 4 wall seconds.
  EXPECT_LT(wall_seconds_since(t0), 2.0);
  EXPECT_GE(w.cpu().total_charged(), 8.0);
}

TEST(MpisimTasks, SleepRetiresInVirtualTime) {
  World w(tasks_cfg(2));
  const auto t0 = std::chrono::steady_clock::now();
  w.run([](Comm& c) {
    const double before = c.true_time();
    c.sleep(30.0);
    EXPECT_GE(c.true_time() - before, 30.0);
    return 0;
  });
  EXPECT_LT(wall_seconds_since(t0), 2.0);
}

TEST(MpisimTasks, ScheduleIsDeterministicPerSeed) {
  // The order a wildcard receiver observes senders is exactly the schedule
  // order, so it fingerprints the scheduler: same seed = same order.
  const auto arrival_order = [](std::uint64_t seed) {
    auto cfg = tasks_cfg(17);
    cfg.seed = seed;
    World w(cfg);
    std::vector<int> order;
    w.run([&order](Comm& c) {
      if (c.rank() == 0) {
        for (int i = 1; i < c.size(); ++i) {
          int v = 0;
          const auto st = c.recv(mpisim::kAnySource, 9, &v, sizeof v);
          order.push_back(st.source);
        }
      } else {
        int v = c.rank();
        c.send(0, 9, &v, sizeof v);
      }
      return 0;
    });
    return order;
  };
  const auto a = arrival_order(12345);
  const auto b = arrival_order(12345);
  const auto c = arrival_order(54321);
  EXPECT_EQ(a, b);
  // 16 senders have 16! orderings; two seeds colliding would itself be a
  // scheduler bug (the shuffle ignoring its seed).
  EXPECT_NE(a, c);
}

TEST(MpisimTasks, DeadlockDetectedWithoutWallTimeout) {
  // Every rank waits on a message nobody sends. Under threads only the
  // watchdog saves this; under tasks the scheduler proves the stall the
  // moment the ready queue and timer heap are both empty.
  auto cfg = tasks_cfg(4);
  cfg.watchdog_seconds = 60.0;  // deliberately long: detection must not need it
  World w(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(w.run([](Comm& c) {
                 int v = 0;
                 c.recv((c.rank() + 1) % c.size(), 1, &v, sizeof v);
                 return 0;
               }),
               mpisim::TimeoutError);
  EXPECT_LT(wall_seconds_since(t0), 5.0);
}

TEST(MpisimTasks, WallDeadlineCatchesYieldSpin) {
  // A rank that spins on iprobe never blocks, so stall detection cannot see
  // it — the wall deadline (polled inside the scheduler loop) must.
  auto cfg = tasks_cfg(2);
  cfg.watchdog_seconds = 0.5;
  World w(cfg);
  EXPECT_THROW(w.run([](Comm& c) {
                 if (c.rank() == 0)
                   while (true) c.iprobe(1, 1);  // throws once aborted
                 int v = 0;
                 c.recv(0, 1, &v, sizeof v);
                 return 0;
               }),
               mpisim::TimeoutError);
}

TEST(MpisimTasks, FaultCrashLeadsToNamedDeadPeerAbort) {
  // Inline kill-rank-1-at-its-3rd-call hook; survivors block on the corpse
  // and the stall handler converts that into the dead-peer diagnostic.
  class KillRankOne : public mpisim::FaultHook {
  public:
    void at_call(int rank, const char* /*what*/) override {
      if (rank == 1 && ++calls_[rank] == 3)
        throw mpisim::RankKilledError(1, "injected crash");
    }
    double message_delay(int, int, std::uint64_t, std::size_t) override {
      return 0.0;
    }
    [[nodiscard]] double grace_seconds() const override { return 0.05; }

  private:
    std::unordered_map<int, int> calls_;
  };
  KillRankOne hook;
  auto cfg = tasks_cfg(8);
  cfg.fault = &hook;
  World w(cfg);
  auto r = w.run([](Comm& c) {
    const int n = c.size();
    for (int round = 0; round < 5; ++round) {
      int token = c.rank();
      c.send((c.rank() + 1) % n, 5, &token, sizeof token);
      c.recv((c.rank() + n - 1) % n, 5, &token, sizeof token);
    }
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_code, World::kPeerDeadAbortCode);
  EXPECT_EQ(r.crashed_ranks, std::vector<int>{1});
}

TEST(MpisimTasks, ExitCodesMatchThreadsSubstrate) {
  // The same program must produce the same per-rank results and message
  // count on either substrate.
  const auto run_once = [](ExecMode mode) {
    World::Config c;
    c.nprocs = 8;
    c.exec = mode;
    c.time_scale = 0.0;
    c.watchdog_seconds = 20.0;
    c.msg_latency = 0.0005;
    World w(c);
    auto r = w.run([](Comm& comm) {
      int v = comm.rank() * 3;
      int sum = 0;
      comm.allreduce(mpisim::Op::kSum, mpisim::Datatype::kInt, &v, &sum, 1);
      return sum;
    });
    return std::make_pair(r.exit_codes, w.messages_delivered());
  };
  const auto threads = run_once(ExecMode::kThreads);
  const auto tasks = run_once(ExecMode::kTasks);
  EXPECT_EQ(threads.first, tasks.first);
  EXPECT_EQ(threads.second, tasks.second);
}

// --- spawn-failure cleanup (satellite: World::start mid-spawn failure) ------

TEST(MpisimTasks, SpawnFailureMidwayCleansUpThreads) {
  auto cfg = threads_cfg(6);
  cfg.debug_fail_spawn_at = 3;  // ranks 0-2 are already running and blocked
  World w(cfg);
  try {
    w.run([](Comm& c) {
      int v = 0;
      c.recv((c.rank() + 1) % c.size(), 1, &v, sizeof v);
      return 0;
    });
    FAIL() << "expected SpawnError";
  } catch (const mpisim::SpawnError& e) {
    EXPECT_EQ(e.rank(), 3);
    EXPECT_NE(std::string(e.what()).find("rank 3"), std::string::npos);
  }
  EXPECT_TRUE(w.is_aborted());
  EXPECT_EQ(w.abort_code(), World::kSpawnFailAbortCode);
  // ~World must not terminate on a leaked joinable thread (the test passing
  // at all is the assertion).
}

TEST(MpisimTasks, SpawnFailureInStartModeCleansUpThreads) {
  auto cfg = threads_cfg(6);
  cfg.debug_fail_spawn_at = 4;
  World w(cfg);
  EXPECT_THROW(w.start([](Comm& c) {
                 int v = 0;
                 c.recv(0, 1, &v, sizeof v);
                 return 0;
               }),
               mpisim::SpawnError);
  EXPECT_EQ(World::current(), nullptr);
  EXPECT_EQ(w.abort_code(), World::kSpawnFailAbortCode);
}

TEST(MpisimTasks, SpawnFailureCleansUpTasks) {
  auto cfg = tasks_cfg(6);
  cfg.debug_fail_spawn_at = 3;
  World w(cfg);
  EXPECT_THROW(w.run([](Comm& c) {
                 int v = 0;
                 c.recv((c.rank() + 1) % c.size(), 1, &v, sizeof v);
                 return 0;
               }),
               mpisim::SpawnError);
  EXPECT_EQ(w.abort_code(), World::kSpawnFailAbortCode);
}

// --- abort-wakeup regression (satellite: predicate-checked waits) -----------
// Ranks are parked in every flavor of blocking wait — a queued-but-in-flight
// receive (the latency wait_until), a barrier, a plain empty-mailbox receive
// — when one rank aborts. All of them must unwind promptly; a missed wakeup
// here turns into a watchdog timeout and fails the test.

void abort_hammer_body(Comm& c) {
  const int n = c.size();
  if (c.rank() == n - 1) {
    // Feed rank 0 a message that is matched but still in flight, so rank 0
    // is inside the deliver_at wait, not the empty-queue wait.
    int v = 7;
    c.send(0, 1, &v, sizeof v);
    c.sleep(0.05);
    c.abort(77);
  } else if (c.rank() == 0) {
    int v = 0;
    c.recv(n - 1, 1, &v, sizeof v);  // in-flight: latency far exceeds abort delay
  } else if (c.rank() % 2 == 0) {
    c.barrier();  // never completed: the barrier cv wait must be abort-wakeable
  } else {
    int v = 0;
    c.recv(mpisim::kAnySource, 99, &v, sizeof v);  // never sent
  }
}

TEST(MpisimTasks, AbortWakesEveryBlockedWaitThreads) {
  auto cfg = threads_cfg(8);
  cfg.msg_latency = 30.0;
  World w(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  auto r = w.run([](Comm& c) {
    abort_hammer_body(c);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_code, 77);
  EXPECT_LT(wall_seconds_since(t0), 10.0);
}

TEST(MpisimTasks, AbortWakesEveryBlockedWaitTasks) {
  auto cfg = tasks_cfg(8);
  cfg.msg_latency = 30.0;
  World w(cfg);
  auto r = w.run([](Comm& c) {
    abort_hammer_body(c);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_EQ(r.abort_code, 77);
}

}  // namespace

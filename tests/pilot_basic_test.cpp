// Pilot lifecycle + point-to-point I/O across the whole type/format matrix.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"

namespace {

// Shared fixtures for work functions (plain C function pointers can't
// capture; Pilot programs traditionally use globals for channels).
PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;
std::vector<PI_CHANNEL*> g_to;
std::vector<PI_CHANNEL*> g_from;

std::vector<std::string> base_args() { return {"pilot-test", "-piwatchdog=20"}; }

TEST(PilotLifecycle, MinimalProgram) {
  const auto res = pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    EXPECT_NE(PI_MAIN, nullptr);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_EQ(res.status, 0);
  EXPECT_FALSE(res.aborted);
}

TEST(PilotLifecycle, ConfigureStripsPilotArgs) {
  pilot::run({"prog", "-pisvc=j", "user1", "-picheck=3", "user2", "-piwatchdog=20"},
             [](int argc, char** argv) {
               PI_Configure(&argc, &argv);
               EXPECT_EQ(argc, 3);
               EXPECT_STREQ(argv[1], "user1");
               EXPECT_STREQ(argv[2], "user2");
               PI_StartAll();
               PI_StopMain(0);
               return 0;
             });
}

TEST(PilotLifecycle, ApiBeforeConfigureFails) {
  EXPECT_THROW(pilot::run(base_args(),
                          [](int, char**) {
                            PI_StartAll();
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotLifecycle, CreateAfterStartFails) {
  EXPECT_THROW(pilot::run(base_args(),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_StartAll();
                            PI_CreateChannel(PI_MAIN, PI_MAIN);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotLifecycle, IoBeforeStartFails) {
  EXPECT_THROW(pilot::run(base_args(),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            int v = 0;
                            PI_Read(nullptr, "%d", &v);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotLifecycle, ProcessBudgetEnforced) {
  EXPECT_THROW(
      pilot::run({"prog", "-pinp=2", "-piwatchdog=20"},
                 [](int argc, char** argv) {
                   PI_Configure(&argc, &argv);  // budget: main + 1 worker
                   PI_CreateProcess([](int, void*) { return 0; }, 0, nullptr);
                   PI_CreateProcess([](int, void*) { return 0; }, 1, nullptr);
                   return 0;
                 }),
      pilot::PilotError);
}

TEST(PilotLifecycle, DefaultNames) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* p = PI_CreateProcess([](int, void*) { return 0; }, 0, nullptr);
    PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, p);
    PI_CHANNEL* chans[] = {c};
    PI_BUNDLE* b = PI_CreateBundle(PI_BROADCAST, chans, 1);
    EXPECT_STREQ(PI_GetName(PI_MAIN), "PI_MAIN");
    EXPECT_STREQ(PI_GetName(p), "P1");
    EXPECT_STREQ(PI_GetName(c), "C1");
    EXPECT_STREQ(PI_GetName(b), "B1");
    PI_SetName(p, "Decomp");
    EXPECT_STREQ(PI_GetName(p), "Decomp");
    EXPECT_EQ(PI_GetBundleSize(b), 1);
    EXPECT_EQ(PI_GetBundleChannel(b, 0), c);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
}

TEST(PilotLifecycle, ExitCodesCollected) {
  const auto res = pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_CreateProcess([](int index, void*) { return index * 7; }, 3, nullptr);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  ASSERT_EQ(res.exit_codes.size(), 2u);
  EXPECT_EQ(res.exit_codes[1], 21);
}

// --- point-to-point round trips ------------------------------------------------

int echo_scalars_worker(int, void*) {
  char c = 0;
  int d = 0;
  unsigned u = 0;
  long ld = 0;
  unsigned long lu = 0;
  long long lld = 0;
  unsigned long long llu = 0;
  float f = 0;
  double lf = 0;
  PI_Read(g_to_worker, "%c %d %u %ld %lu %lld %llu %f %lf", &c, &d, &u, &ld, &lu,
          &lld, &llu, &f, &lf);
  PI_Write(g_from_worker, "%c %d %u %ld %lu %lld %llu %f %lf", c, d, u, ld, lu, lld,
           llu, f, lf);
  return 0;
}

TEST(PilotIO, AllScalarTypesRoundTrip) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_scalars_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();

    PI_Write(g_to_worker, "%c %d %u %ld %lu %lld %llu %f %lf", 'x', -42, 42u,
             -123456789L, 123456789UL, -987654321012345LL, 987654321012345ULL,
             1.5f, 2.25);
    char c;
    int d;
    unsigned u;
    long ld;
    unsigned long lu;
    long long lld;
    unsigned long long llu;
    float f;
    double lf;
    PI_Read(g_from_worker, "%c %d %u %ld %lu %lld %llu %f %lf", &c, &d, &u, &ld,
            &lu, &lld, &llu, &f, &lf);
    EXPECT_EQ(c, 'x');
    EXPECT_EQ(d, -42);
    EXPECT_EQ(u, 42u);
    EXPECT_EQ(ld, -123456789L);
    EXPECT_EQ(lu, 123456789UL);
    EXPECT_EQ(lld, -987654321012345LL);
    EXPECT_EQ(llu, 987654321012345ULL);
    EXPECT_FLOAT_EQ(f, 1.5f);
    EXPECT_DOUBLE_EQ(lf, 2.25);
    PI_StopMain(0);
    return 0;
  });
}

int sum_array_worker(int, void*) {
  // The paper's lab2 pattern: read length, then the data with %*d.
  int myshare = 0;
  PI_Read(g_to_worker, "%d", &myshare);
  std::vector<int> buff(static_cast<std::size_t>(myshare));
  PI_Read(g_to_worker, "%*d", myshare, buff.data());
  long sum = 0;
  for (int v : buff) sum += v;
  PI_Write(g_from_worker, "%ld", sum);
  return 0;
}

TEST(PilotIO, StarArraysLab2Pattern) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(sum_array_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();

    std::vector<int> numbers(1000);
    long expect = 0;
    for (int i = 0; i < 1000; ++i) {
      numbers[static_cast<std::size_t>(i)] = i;
      expect += i;
    }
    PI_Write(g_to_worker, "%d", 1000);
    PI_Write(g_to_worker, "%*d", 1000, numbers.data());
    long sum = 0;
    PI_Read(g_from_worker, "%ld", &sum);
    EXPECT_EQ(sum, expect);
    PI_StopMain(0);
    return 0;
  });
}

int caret_worker(int, void*) {
  // V2.1: single call receives length + malloc'd array.
  int myshare = 0;
  int* buff = nullptr;
  PI_Read(g_to_worker, "%^d", &myshare, &buff);
  long sum = 0;
  for (int i = 0; i < myshare; ++i) sum += buff[i];
  std::free(buff);
  PI_Write(g_from_worker, "%d %ld", myshare, sum);
  return 0;
}

TEST(PilotIO, CaretAutoAllocation) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(caret_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();

    std::vector<int> data = {5, 10, 15, 20};
    PI_Write(g_to_worker, "%^d", 4, data.data());
    int n = 0;
    long sum = 0;
    PI_Read(g_from_worker, "%d %ld", &n, &sum);
    EXPECT_EQ(n, 4);
    EXPECT_EQ(sum, 50);
    PI_StopMain(0);
    return 0;
  });
}

int fixed_and_bytes_worker(int, void*) {
  double xs[8];
  unsigned char blob[16];
  PI_Read(g_to_worker, "%8lf %16b", xs, blob);
  double total = 0;
  for (double x : xs) total += x;
  PI_Write(g_from_worker, "%lf %16b", total, blob);
  return 0;
}

TEST(PilotIO, FixedArraysAndBytes) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(fixed_and_bytes_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();

    double xs[8];
    for (int i = 0; i < 8; ++i) xs[i] = i + 0.5;
    unsigned char blob[16];
    for (int i = 0; i < 16; ++i) blob[i] = static_cast<unsigned char>(0xF0 + i);
    PI_Write(g_to_worker, "%8lf %16b", xs, blob);
    double total = 0;
    unsigned char echo[16];
    PI_Read(g_from_worker, "%lf %16b", &total, echo);
    EXPECT_DOUBLE_EQ(total, 8 * 0.5 + 28.0);
    EXPECT_EQ(std::memcmp(echo, blob, 16), 0);
    PI_StopMain(0);
    return 0;
  });
}

int zero_len_worker(int, void*) {
  int n = -1;
  int* buf = nullptr;
  PI_Read(g_to_worker, "%^d", &n, &buf);
  std::free(buf);
  PI_Write(g_from_worker, "%d", n);
  return 0;
}

TEST(PilotIO, ZeroLengthArray) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(zero_len_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    PI_Write(g_to_worker, "%*d", 0, static_cast<int*>(nullptr));
    int n = -1;
    PI_Read(g_from_worker, "%d", &n);
    EXPECT_EQ(n, 0);
    PI_StopMain(0);
    return 0;
  });
}

int multi_spec_worker(int, void*) {
  // "%d %100f" really is two messages: read them with two separate calls.
  int n = 0;
  PI_Read(g_to_worker, "%d", &n);
  float xs[100];
  PI_Read(g_to_worker, "%100f", xs);
  PI_Write(g_from_worker, "%f", xs[99]);
  return 0;
}

TEST(PilotIO, EachSpecifierIsItsOwnMessage) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(multi_spec_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    float xs[100];
    for (int i = 0; i < 100; ++i) xs[i] = static_cast<float>(i);
    PI_Write(g_to_worker, "%d %100f", 100, xs);  // one call, two messages
    float last = 0;
    PI_Read(g_from_worker, "%f", &last);
    EXPECT_FLOAT_EQ(last, 99.0f);
    PI_StopMain(0);
    return 0;
  });
}

TEST(PilotIO, StartEndTime) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_StartAll();
    const double t0 = PI_StartTime();
    EXPECT_GE(t0, 0.0);
    const double dt = PI_EndTime();
    EXPECT_GE(dt, 0.0);
    EXPECT_LT(dt, 5.0);
    PI_StopMain(0);
    return 0;
  });
}

}  // namespace

// PI_Broadcast / PI_Scatter / PI_Gather / PI_Reduce / PI_Select family.
#include <gtest/gtest.h>

#include <vector>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"

namespace {

constexpr int kWorkers = 4;
PI_CHANNEL* g_down[kWorkers];  // main -> worker i
PI_CHANNEL* g_up[kWorkers];    // worker i -> main
PI_BUNDLE* g_up_bundle = nullptr;

std::vector<std::string> base_args() { return {"pilot-test", "-piwatchdog=20"}; }

// Each worker: read a broadcast value + its scatter slice, reply with sums.
int bcast_scatter_worker(int index, void*) {
  int base = 0;
  PI_Read(g_down[index], "%d", &base);
  int slice[3];
  PI_Read(g_down[index], "%3d", slice);
  PI_Write(g_up[index], "%d", base + slice[0] + slice[1] + slice[2]);
  return 0;
}

TEST(PilotCollectives, BroadcastScatterGather) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(bcast_scatter_worker, i, nullptr);
      g_down[i] = PI_CreateChannel(PI_MAIN, w);
      g_up[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_BUNDLE* bcast = PI_CreateBundle(PI_BROADCAST, g_down, kWorkers);
    // A channel may belong to several bundles with different usages in this
    // reproduction; real Pilot also allows reuse across collective calls.
    PI_CHANNEL* down2[kWorkers];
    PI_CHANNEL* up2[kWorkers];
    for (int i = 0; i < kWorkers; ++i) {
      down2[i] = g_down[i];
      up2[i] = g_up[i];
    }
    PI_BUNDLE* scat = PI_CreateBundle(PI_SCATTER, down2, kWorkers);
    PI_BUNDLE* gath = PI_CreateBundle(PI_GATHER, up2, kWorkers);
    PI_StartAll();

    PI_Broadcast(bcast, "%d", 1000);
    int all[kWorkers * 3];
    for (int i = 0; i < kWorkers * 3; ++i) all[i] = i;
    PI_Scatter(scat, "%3d", all);

    int sums[kWorkers];
    PI_Gather(gath, "%d", sums);
    for (int i = 0; i < kWorkers; ++i) {
      const int expect = 1000 + (3 * i) + (3 * i + 1) + (3 * i + 2);
      EXPECT_EQ(sums[i], expect) << "worker " << i;
    }
    PI_StopMain(0);
    return 0;
  });
}

int contribute_worker(int index, void*) {
  PI_Write(g_up[index], "%d", index + 1);
  double xs[2] = {index * 1.0, index * 10.0};
  PI_Write(g_up[index], "%2lf", xs);
  return 0;
}

TEST(PilotCollectives, ReduceSumAndArrays) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(contribute_worker, i, nullptr);
      g_up[i] = PI_CreateChannel(w, PI_MAIN);
    }
    g_up_bundle = PI_CreateBundle(PI_REDUCE, g_up, kWorkers);
    PI_StartAll();

    int total = -1;
    PI_Reduce(g_up_bundle, PI_SUM, "%d", &total);
    EXPECT_EQ(total, 1 + 2 + 3 + 4);

    double maxes[2];
    PI_Reduce(g_up_bundle, PI_MAX, "%2lf", maxes);
    EXPECT_DOUBLE_EQ(maxes[0], 3.0);
    EXPECT_DOUBLE_EQ(maxes[1], 30.0);
    PI_StopMain(0);
    return 0;
  });
}

int slow_then_write_worker(int index, void*) {
  // Worker 2 writes immediately; everyone else waits for a nudge that
  // never comes before main's select.
  if (index == 2) {
    PI_Write(g_up[index], "%d", 222);
  } else {
    int nudge = 0;
    PI_Read(g_down[index], "%d", &nudge);
    PI_Write(g_up[index], "%d", index);
  }
  return 0;
}

TEST(PilotCollectives, SelectFindsReadyChannel) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(slow_then_write_worker, i, nullptr);
      g_down[i] = PI_CreateChannel(PI_MAIN, w);
      g_up[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, g_up, kWorkers);
    PI_StartAll();

    const int ready = PI_Select(sel);
    EXPECT_EQ(ready, 2);
    EXPECT_EQ(PI_ChannelHasData(g_up[ready]), 1);
    int v = 0;
    PI_Read(PI_GetBundleChannel(sel, ready), "%d", &v);
    EXPECT_EQ(v, 222);

    // Unblock the rest and drain.
    for (int i = 0; i < kWorkers; ++i) {
      if (i == 2) continue;
      PI_Write(g_down[i], "%d", 1);
      int got = -1;
      PI_Read(g_up[i], "%d", &got);
      EXPECT_EQ(got, i);
    }
    PI_StopMain(0);
    return 0;
  });
}

int quiet_worker(int index, void*) {
  int nudge = 0;
  PI_Read(g_down[index], "%d", &nudge);
  PI_Write(g_up[index], "%d", index);
  return 0;
}

TEST(PilotCollectives, TrySelectNonBlocking) {
  pilot::run(base_args(), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(quiet_worker, i, nullptr);
      g_down[i] = PI_CreateChannel(PI_MAIN, w);
      g_up[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, g_up, kWorkers);
    PI_StartAll();

    // Nothing written yet: TrySelect must return -1 without blocking,
    // ChannelHasData must say no.
    EXPECT_EQ(PI_TrySelect(sel), -1);
    EXPECT_EQ(PI_ChannelHasData(g_up[0]), 0);

    for (int i = 0; i < kWorkers; ++i) PI_Write(g_down[i], "%d", 1);
    for (int i = 0; i < kWorkers; ++i) {
      const int ready = PI_Select(sel);
      int v = -1;
      PI_Read(g_up[ready], "%d", &v);
      EXPECT_EQ(v, ready);
    }
    PI_StopMain(0);
    return 0;
  });
}

TEST(PilotCollectives, BundleEndpointValidation) {
  EXPECT_THROW(
      pilot::run(base_args(),
                 [](int argc, char** argv) {
                   PI_Configure(&argc, &argv);
                   PI_PROCESS* a =
                       PI_CreateProcess([](int, void*) { return 0; }, 0, nullptr);
                   PI_PROCESS* b =
                       PI_CreateProcess([](int, void*) { return 0; }, 1, nullptr);
                   // Broadcast bundle needs a common writer; these differ.
                   PI_CHANNEL* c1 = PI_CreateChannel(PI_MAIN, a);
                   PI_CHANNEL* c2 = PI_CreateChannel(a, b);
                   PI_CHANNEL* chans[] = {c1, c2};
                   PI_CreateBundle(PI_BROADCAST, chans, 2);
                   return 0;
                 }),
      pilot::PilotError);
}

TEST(PilotCollectives, UsageMismatchRejected) {
  EXPECT_THROW(
      pilot::run(base_args(),
                 [](int argc, char** argv) {
                   PI_Configure(&argc, &argv);
                   PI_PROCESS* w =
                       PI_CreateProcess([](int, void*) { return 0; }, 0, nullptr);
                   PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
                   PI_CHANNEL* chans[] = {c};
                   PI_BUNDLE* b = PI_CreateBundle(PI_GATHER, chans, 1);
                   PI_StartAll();
                   PI_Broadcast(b, "%d", 1);  // wrong verb for this bundle
                   PI_StopMain(0);
                   return 0;
                 }),
      pilot::PilotError);
}

TEST(PilotCollectives, DuplicateChannelRejected) {
  EXPECT_THROW(
      pilot::run(base_args(),
                 [](int argc, char** argv) {
                   PI_Configure(&argc, &argv);
                   PI_PROCESS* w =
                       PI_CreateProcess([](int, void*) { return 0; }, 0, nullptr);
                   PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
                   PI_CHANNEL* chans[] = {c, c};
                   PI_CreateBundle(PI_BROADCAST, chans, 2);
                   return 0;
                 }),
      pilot::PilotError);
}

}  // namespace

// PI_CopyChannels: duplicate a channel array (optionally reversed) to build
// independent bundles — real Pilot's idiom for reusing a topology.
#include <gtest/gtest.h>

#include <cstdlib>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"

namespace {

constexpr int kWorkers = 3;
PI_CHANNEL* g_down[kWorkers];
PI_CHANNEL** g_down_copy = nullptr;
PI_CHANNEL** g_up = nullptr;  // REVERSE copies of down

int copy_worker(int index, void*) {
  int a = 0, b = 0;
  PI_Read(g_down[index], "%d", &a);            // original
  PI_Read(g_down_copy[index], "%d", &b);       // independent copy
  PI_Write(g_up[index], "%d", a * 10 + b);     // reversed copy: worker -> main
  return 0;
}

TEST(CopyChannels, SameAndReverseCopiesWork) {
  pilot::run({"prog", "-piwatchdog=20"}, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(copy_worker, i, nullptr);
      g_down[i] = PI_CreateChannel(PI_MAIN, w);
    }
    g_down_copy = PI_CopyChannels(PI_SAME, g_down, kWorkers);
    g_up = PI_CopyChannels(PI_REVERSE, g_down, kWorkers);

    // Copies are distinct channels with the expected endpoints.
    for (int i = 0; i < kWorkers; ++i) {
      EXPECT_NE(g_down_copy[i], g_down[i]);
      EXPECT_STRNE(PI_GetName(g_down_copy[i]), PI_GetName(g_down[i]));
    }

    PI_BUNDLE* gather = PI_CreateBundle(PI_GATHER, g_up, kWorkers);
    PI_StartAll();

    for (int i = 0; i < kWorkers; ++i) {
      PI_Write(g_down[i], "%d", i + 1);
      PI_Write(g_down_copy[i], "%d", i + 4);
    }
    int results[kWorkers];
    PI_Gather(gather, "%d", results);
    for (int i = 0; i < kWorkers; ++i)
      EXPECT_EQ(results[i], (i + 1) * 10 + (i + 4));

    PI_StopMain(0);
    std::free(g_down_copy);
    std::free(g_up);
    return 0;
  });
}

TEST(CopyChannels, OnlyDuringConfigPhase) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w = PI_CreateProcess(
                                [](int, void*) { return 0; }, 0, nullptr);
                            PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
                            PI_CHANNEL* chans[] = {c};
                            PI_StartAll();
                            PI_CopyChannels(PI_SAME, chans, 1);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(CopyChannels, RejectsBadArguments) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_CopyChannels(PI_SAME, nullptr, 3);
                            return 0;
                          }),
               pilot::PilotError);
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w = PI_CreateProcess(
                                [](int, void*) { return 0; }, 0, nullptr);
                            PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
                            PI_CHANNEL* chans[] = {c};
                            PI_CopyChannels(static_cast<PI_COPYDIR>(9), chans, 1);
                            return 0;
                          }),
               pilot::PilotError);
}

}  // namespace

// Deadlock detection around PI_Select: a select blocks until ANY of its
// bundle's channels has data, so the detector may only flag it when every
// potential writer is provably unable to write (OR-wait semantics).
#include <gtest/gtest.h>

#include <vector>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "util/fs.hpp"

namespace {

constexpr int kWorkers = 3;
PI_CHANNEL* g_up[kWorkers];
PI_CHANNEL* g_down[kWorkers];

int silent_worker(int, void*) { return 0; }  // exits without writing

int one_writer_worker(int index, void*) {
  if (index == 1) {
    PI_Write(g_up[index], "%d", 42);
  }
  return 0;
}

int waiting_writer_worker(int index, void*) {
  int nudge = 0;
  PI_Read(g_down[index], "%d", &nudge);  // wait for main...
  PI_Write(g_up[index], "%d", index);
  return 0;
}

TEST(DeadlockSelect, SelectOnDeadChannelsDetected) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        for (int i = 0; i < kWorkers; ++i) {
          PI_PROCESS* w = PI_CreateProcess(silent_worker, i, nullptr);
          g_up[i] = PI_CreateChannel(w, PI_MAIN);
        }
        PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, g_up, kWorkers);
        PI_StartAll();
        PI_Select(sel);  // every writer exits without writing: stuck
        ADD_FAILURE() << "select returned";
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.deadlock);
  EXPECT_EQ(res.abort_code, pilot::kDeadlockAbortCode);
}

TEST(DeadlockSelect, SelectWithOneLiveWriterNotFlagged) {
  // Two of three writers exit silently, one writes: the select is
  // satisfiable and must NOT be reported as deadlock.
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        for (int i = 0; i < kWorkers; ++i) {
          PI_PROCESS* w = PI_CreateProcess(one_writer_worker, i, nullptr);
          g_up[i] = PI_CreateChannel(w, PI_MAIN);
        }
        PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, g_up, kWorkers);
        PI_StartAll();
        const int ready = PI_Select(sel);
        EXPECT_EQ(ready, 1);
        int v = 0;
        PI_Read(g_up[ready], "%d", &v);
        EXPECT_EQ(v, 42);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  EXPECT_FALSE(res.deadlock);
}

TEST(DeadlockSelect, SelectWaitingOnBlockedWritersEventuallyServed) {
  // Writers block on main, main selects on them — but main unblocks a
  // writer before selecting, so the system is live. The detector must stay
  // quiet through the whole dance.
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        for (int i = 0; i < kWorkers; ++i) {
          PI_PROCESS* w = PI_CreateProcess(waiting_writer_worker, i, nullptr);
          g_up[i] = PI_CreateChannel(w, PI_MAIN);
          g_down[i] = PI_CreateChannel(PI_MAIN, w);
        }
        PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, g_up, kWorkers);
        PI_StartAll();
        for (int i = 0; i < kWorkers; ++i) {
          PI_Write(g_down[i], "%d", 1);
          const int ready = PI_Select(sel);
          int v = -1;
          PI_Read(g_up[ready], "%d", &v);
          EXPECT_EQ(v, ready);
        }
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  EXPECT_FALSE(res.deadlock);
}

TEST(DeadlockSelect, CycleThroughSelectDetected) {
  // Main selects on the worker; the worker reads from main: a two-party
  // cycle where one side is an OR-wait.
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(waiting_writer_worker, 0, nullptr);
        g_up[0] = PI_CreateChannel(w, PI_MAIN);
        g_down[0] = PI_CreateChannel(PI_MAIN, w);
        PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, g_up, 1);
        PI_StartAll();
        PI_Select(sel);  // worker waits for our nudge; we wait for its write
        ADD_FAILURE() << "select returned";
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.deadlock);
  EXPECT_NE(res.deadlock_report.find("PI_MAIN"), std::string::npos)
      << res.deadlock_report;
}

}  // namespace

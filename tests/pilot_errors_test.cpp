// Error-checking levels: ownership checks (level 1), reader/writer format
// matching (level 2), pointer validity (level 3) — the paper's V3.0
// command-line selectable checking.
#include <gtest/gtest.h>

#include <vector>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"

namespace {

PI_CHANNEL* g_to_worker = nullptr;

std::vector<std::string> args_with_check(int level) {
  return {"pilot-test", "-picheck=" + std::to_string(level), "-piwatchdog=20"};
}

int idle_worker(int, void*) { return 0; }

int read_int_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  return 0;
}

int read_float_worker(int, void*) {
  float v = 0;
  PI_Read(g_to_worker, "%f", &v);
  return 0;
}

int read_double_worker(int, void*) {
  double v = 0;
  PI_Read(g_to_worker, "%lf", &v);
  return 0;
}

TEST(PilotChecks, WrongWriterRejectedAtLevel1) {
  EXPECT_THROW(pilot::run(args_with_check(1),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w =
                                PI_CreateProcess(read_int_worker, 0, nullptr);
                            // Channel writer is the worker, not PI_MAIN.
                            g_to_worker = PI_CreateChannel(w, PI_MAIN);
                            PI_StartAll();
                            PI_Write(g_to_worker, "%d", 1);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, WrongReaderRejectedAtLevel1) {
  EXPECT_THROW(pilot::run(args_with_check(1),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w =
                                PI_CreateProcess(idle_worker, 0, nullptr);
                            PI_CHANNEL* c = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            int v;
                            PI_Read(c, "%d", &v);  // PI_MAIN is the writer side
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, FormatMismatchCaughtAtLevel2) {
  // Writer sends %d, reader asks %f: same byte size, so only the level-2
  // signature check can catch it.
  EXPECT_THROW(pilot::run(args_with_check(2),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w =
                                PI_CreateProcess(read_float_worker, 0, nullptr);
                            g_to_worker = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            PI_Write(g_to_worker, "%d", 7);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, FormatMismatchUndetectedAtLevel1WhenSizesMatch) {
  // Same program at level 1: bytes reinterpret silently (the hazard the
  // level-2 checking exists to catch).
  const auto res = pilot::run(args_with_check(1), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(read_float_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    PI_StartAll();
    static_assert(sizeof(int) == sizeof(float));
    PI_Write(g_to_worker, "%d", 7);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(res.aborted);
}

TEST(PilotChecks, SizeMismatchAlwaysCaught) {
  // %d (4 bytes) read as %lf (8): the wire size check fires at any level.
  EXPECT_THROW(pilot::run(args_with_check(0),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w =
                                PI_CreateProcess(read_double_worker, 0, nullptr);
                            g_to_worker = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            PI_Write(g_to_worker, "%d", 7);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, ArrayLengthMismatchCaught) {
  EXPECT_THROW(pilot::run(args_with_check(1),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w = PI_CreateProcess(
                                [](int, void*) {
                                  int xs[5];
                                  PI_Read(g_to_worker, "%5d", xs);
                                  return 0;
                                },
                                0, nullptr);
                            g_to_worker = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            int xs[3] = {1, 2, 3};
                            PI_Write(g_to_worker, "%3d", xs);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, NullPointerCaughtAtLevel3) {
  EXPECT_THROW(pilot::run(args_with_check(3),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w = PI_CreateProcess(idle_worker, 0, nullptr);
                            g_to_worker = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            PI_Write(g_to_worker, "%4d", static_cast<int*>(nullptr));
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, NullChannelAlwaysRejected) {
  EXPECT_THROW(pilot::run(args_with_check(0),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_StartAll();
                            PI_Write(nullptr, "%d", 1);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, BadFormatStringRejected) {
  EXPECT_THROW(pilot::run(args_with_check(1),
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w = PI_CreateProcess(idle_worker, 0, nullptr);
                            g_to_worker = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            PI_Write(g_to_worker, "%q", 1);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(PilotChecks, ErrorMessagesCarrySourceLocation) {
  try {
    pilot::run(args_with_check(1), [](int argc, char** argv) {
      PI_Configure(&argc, &argv);
      PI_StartAll();
      PI_Write(nullptr, "%d", 1);
      PI_StopMain(0);
      return 0;
    });
    FAIL() << "expected PilotError";
  } catch (const pilot::PilotError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pilot_errors_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("PI_Write"), std::string::npos) << what;
  }
}

TEST(PilotChecks, AbortTerminatesEveryone) {
  const auto res = pilot::run(args_with_check(1), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(
        [](int, void*) -> int {
          int v;
          PI_Read(g_to_worker, "%d", &v);  // blocks forever
          return 0;
        },
        0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    PI_StartAll();
    PI_Abort(42, "giving up");  // never returns
    ADD_FAILURE() << "PI_Abort returned";
    return 0;
  });
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(res.abort_code, 42);
}

}  // namespace

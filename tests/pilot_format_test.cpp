#include "pilot/format.hpp"

#include <gtest/gtest.h>

namespace {

using pilot::CountKind;
using pilot::FormatSpec;
using pilot::parse_format;
using pilot::ValueType;

TEST(Format, ScalarTypes) {
  const auto specs = parse_format("%c %d %u %ld %lu %lld %llu %f %lf");
  ASSERT_EQ(specs.size(), 9u);
  EXPECT_EQ(specs[0].type, ValueType::kChar);
  EXPECT_EQ(specs[1].type, ValueType::kInt);
  EXPECT_EQ(specs[2].type, ValueType::kUnsigned);
  EXPECT_EQ(specs[3].type, ValueType::kLong);
  EXPECT_EQ(specs[4].type, ValueType::kUnsignedLong);
  EXPECT_EQ(specs[5].type, ValueType::kLongLong);
  EXPECT_EQ(specs[6].type, ValueType::kUnsignedLongLong);
  EXPECT_EQ(specs[7].type, ValueType::kFloat);
  EXPECT_EQ(specs[8].type, ValueType::kDouble);
  for (const auto& s : specs) EXPECT_EQ(s.count, CountKind::kScalar);
}

TEST(Format, PaperExampleTwoMessages) {
  // The paper: "%d %100f" sends two MPI messages.
  const auto specs = parse_format("%d %100f");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].count, CountKind::kScalar);
  EXPECT_EQ(specs[1].count, CountKind::kFixed);
  EXPECT_EQ(specs[1].fixed_count, 100u);
  EXPECT_EQ(specs[1].type, ValueType::kFloat);
}

TEST(Format, StarAndCaret) {
  const auto specs = parse_format("%*d %^lf");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].count, CountKind::kStar);
  EXPECT_EQ(specs[1].count, CountKind::kCaret);
  EXPECT_EQ(specs[1].type, ValueType::kDouble);
}

TEST(Format, BytesNeedCount) {
  EXPECT_NO_THROW(parse_format("%16b"));
  EXPECT_NO_THROW(parse_format("%*b"));
  EXPECT_THROW(parse_format("%b"), pilot::FormatError);
}

TEST(Format, Signatures) {
  EXPECT_EQ(parse_format("%d")[0].signature(), "d");
  EXPECT_EQ(parse_format("%100f")[0].signature(), "100f");
  EXPECT_EQ(parse_format("%*lld")[0].signature(), "*lld");
  EXPECT_EQ(parse_format("%^lf")[0].signature(), "^lf");
}

TEST(Format, SignatureRoundTrip) {
  for (const char* fmt : {"%d", "%c", "%u", "%ld", "%lu", "%lld", "%llu", "%f",
                          "%lf", "%7d", "%*f", "%^d", "%32b"}) {
    const auto spec = parse_format(fmt)[0];
    const auto again = parse_format("%" + spec.signature())[0];
    EXPECT_EQ(again.type, spec.type) << fmt;
    EXPECT_EQ(again.count, spec.count) << fmt;
    EXPECT_EQ(again.fixed_count, spec.fixed_count) << fmt;
  }
}

TEST(Format, ElementSizes) {
  EXPECT_EQ(parse_format("%d")[0].element_size(), sizeof(int));
  EXPECT_EQ(parse_format("%lf")[0].element_size(), sizeof(double));
  EXPECT_EQ(parse_format("%8b")[0].element_size(), 1u);
}

TEST(Format, RejectsGarbage) {
  EXPECT_THROW(parse_format(""), pilot::FormatError);
  EXPECT_THROW(parse_format("   "), pilot::FormatError);
  EXPECT_THROW(parse_format("%x"), pilot::FormatError);
  EXPECT_THROW(parse_format("%l"), pilot::FormatError);
  EXPECT_THROW(parse_format("%lx"), pilot::FormatError);
  EXPECT_THROW(parse_format("d"), pilot::FormatError);
  EXPECT_THROW(parse_format("%d items"), pilot::FormatError);
  EXPECT_THROW(parse_format("%0d"), pilot::FormatError);
  EXPECT_THROW(parse_format("%9999999999d"), pilot::FormatError);
  EXPECT_THROW(parse_format("%"), pilot::FormatError);
  EXPECT_THROW(parse_format("%*"), pilot::FormatError);
}

TEST(Format, WhitespaceFlexible) {
  EXPECT_EQ(parse_format("%d%d").size(), 2u);
  EXPECT_EQ(parse_format("  %d   %f ").size(), 2u);
}

TEST(Format, Compatibility) {
  using pilot::specs_compatible;
  const auto spec = [](const char* f) { return parse_format(f)[0]; };
  // Same type, both arrays: compatible even across count kinds (lengths are
  // validated at read time against the wire).
  EXPECT_TRUE(specs_compatible(spec("%100d"), spec("%*d")));
  EXPECT_TRUE(specs_compatible(spec("%*d"), spec("%^d")));
  EXPECT_TRUE(specs_compatible(spec("%d"), spec("%d")));
  // Type mismatches.
  EXPECT_FALSE(specs_compatible(spec("%d"), spec("%f")));
  EXPECT_FALSE(specs_compatible(spec("%ld"), spec("%lld")));
  EXPECT_FALSE(specs_compatible(spec("%u"), spec("%d")));
  // Scalar vs array.
  EXPECT_FALSE(specs_compatible(spec("%d"), spec("%*d")));
  EXPECT_FALSE(specs_compatible(spec("%5f"), spec("%f")));
}

}  // namespace

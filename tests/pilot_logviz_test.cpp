// The paper's contribution end-to-end: run Pilot programs with -pisvc=j,
// then check the CLOG-2 contents and the converted SLOG-2 drawables against
// Section III's visual design.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "jumpshot/stats.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "slog2/slog2.hpp"
#include "util/fs.hpp"

namespace {

PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;

std::vector<std::string> jlog_args(const util::TempDir& dir) {
  return {"prog", "-pisvc=j", "-piout=" + dir.path().string(), "-piwatchdog=30"};
}

std::map<std::string, std::size_t> count_states_by_name(const slog2::File& f) {
  std::map<std::string, std::size_t> counts;
  f.visit_window(
      f.t_min, f.t_max,
      [&](const slog2::StateDrawable& s) {
        const auto* cat = f.category(s.category_id);
        if (cat) counts[cat->name]++;
      },
      nullptr, nullptr);
  return counts;
}

int echo_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Write(g_from_worker, "%d", v + 1);
  return 0;
}

TEST(LogViz, ProducesCleanConvertibleTrace) {
  util::TempDir dir;
  const auto res = pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    PI_Write(g_to_worker, "%d", 1);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_GT(res.mpe_wrapup_seconds, 0.0);  // the paper's measured wrap-up cost

  const auto clog = clog2::read_file(dir.file("pilot.clog2"));
  EXPECT_EQ(clog.nranks, 2);
  std::vector<std::string> warnings;
  const auto slog = slog2::convert(clog, {}, &warnings);
  EXPECT_TRUE(slog.stats.clean()) << slog2::to_text(slog);
  EXPECT_TRUE(warnings.empty());

  const auto counts = count_states_by_name(slog);
  EXPECT_EQ(counts.at("PI_Write"), 2u);  // one by main, one by worker
  EXPECT_EQ(counts.at("PI_Read"), 2u);
  EXPECT_EQ(counts.at("PI_Configure"), 1u);  // bisque config-phase rectangle
  EXPECT_EQ(counts.at("Compute"), 2u);       // gray state per process
  // One arrow per message: main->worker and worker->main.
  EXPECT_EQ(slog.stats.total_arrows, 2u);
}

TEST(LogViz, PopupsCarryLineNumbersAndChannelNames) {
  util::TempDir dir;
  pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_SetName(g_from_worker, "Results");
    PI_StartAll();
    PI_Write(g_to_worker, "%d", 1);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));

  // State popups: "L<line> <proc> i<index>" (literal-prefix workaround).
  bool saw_line_popup = false;
  slog.visit_window(
      slog.t_min, slog.t_max,
      [&](const slog2::StateDrawable& s) {
        if (!s.start_text.empty() && s.start_text[0] == 'L') saw_line_popup = true;
      },
      nullptr, nullptr);
  EXPECT_TRUE(saw_line_popup);

  // Arrival bubbles name the channel, including the PI_SetName'd one.
  bool saw_named_channel = false;
  std::size_t arrive_bubbles = 0;
  slog.visit_window(
      slog.t_min, slog.t_max, nullptr,
      [&](const slog2::EventDrawable& e) {
        const auto* cat = slog.category(e.category_id);
        if (cat && cat->name == "MsgArrive") {
          ++arrive_bubbles;
          if (e.text.find("Results") != std::string::npos) saw_named_channel = true;
        }
      },
      nullptr);
  EXPECT_EQ(arrive_bubbles, 2u);  // one per received message
  EXPECT_TRUE(saw_named_channel);
}

int multi_msg_worker(int, void*) {
  int n = 0;
  float xs[100];
  PI_Read(g_to_worker, "%d %100f", &n, xs);
  PI_Write(g_from_worker, "%d", n);
  return 0;
}

TEST(LogViz, OneBubbleAndArrowPerMessageWithinACall) {
  // The paper: "%d %100f" sends two MPI messages — the log must show one
  // arrival bubble per message inside the single PI_Read rectangle.
  util::TempDir dir;
  pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(multi_msg_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    float xs[100] = {};
    PI_Write(g_to_worker, "%d %100f", 100, xs);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  EXPECT_TRUE(slog.stats.clean());
  // 2 messages down + 1 up = 3 arrows.
  EXPECT_EQ(slog.stats.total_arrows, 3u);
  const auto counts = count_states_by_name(slog);
  EXPECT_EQ(counts.at("PI_Read"), 2u);  // one call per side, not per message
  EXPECT_EQ(counts.at("PI_Write"), 2u);
}

constexpr int kFan = 3;
PI_CHANNEL* g_fan[kFan];
PI_CHANNEL* g_fan_up[kFan];

int fan_worker(int index, void*) {
  int v = 0;
  PI_Read(g_fan[index], "%d", &v);
  PI_Write(g_fan_up[index], "%d", v * (index + 1));
  return 0;
}

TEST(LogViz, CollectivesDrawOneArrowPerChannel) {
  util::TempDir dir;
  pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kFan; ++i) {
      PI_PROCESS* w = PI_CreateProcess(fan_worker, i, nullptr);
      g_fan[i] = PI_CreateChannel(PI_MAIN, w);
      g_fan_up[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_BUNDLE* bcast = PI_CreateBundle(PI_BROADCAST, g_fan, kFan);
    PI_BUNDLE* gather = PI_CreateBundle(PI_GATHER, g_fan_up, kFan);
    PI_SetName(bcast, "Fan");
    PI_StartAll();
    PI_Broadcast(bcast, "%d", 7);
    int out[kFan];
    PI_Gather(gather, "%d", out);
    for (int i = 0; i < kFan; ++i) EXPECT_EQ(out[i], 7 * (i + 1));
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  EXPECT_TRUE(slog.stats.clean());
  // N arrows out (broadcast) + N back (gather, one per worker write).
  EXPECT_EQ(slog.stats.total_arrows, static_cast<std::uint64_t>(2 * kFan));

  const auto counts = count_states_by_name(slog);
  EXPECT_EQ(counts.at("PI_Broadcast"), 1u);
  EXPECT_EQ(counts.at("PI_Gather"), 1u);

  // The broadcaster's popup names the bundle (PI_SetName'd to "Fan").
  bool bundle_named = false;
  slog.visit_window(
      slog.t_min, slog.t_max,
      [&](const slog2::StateDrawable& s) {
        const auto* cat = slog.category(s.category_id);
        if (cat && cat->name == "PI_Broadcast" &&
            s.start_text.find("Fan") != std::string::npos)
          bundle_named = true;
      },
      nullptr, nullptr);
  EXPECT_TRUE(bundle_named);
}

TEST(LogViz, UtilityFunctionsAreBubbles) {
  util::TempDir dir;
  pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_CHANNEL* chans[] = {g_from_worker};
    PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, chans, 1);
    PI_StartAll();
    PI_StartTime();
    EXPECT_EQ(PI_ChannelHasData(g_from_worker), 0);
    EXPECT_EQ(PI_TrySelect(sel), -1);
    PI_Log("looking for data");
    PI_Write(g_to_worker, "%d", 1);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_EndTime();
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  std::size_t utility = 0, user_log = 0;
  slog.visit_window(
      slog.t_min, slog.t_max, nullptr,
      [&](const slog2::EventDrawable& e) {
        const auto* cat = slog.category(e.category_id);
        if (!cat) return;
        if (cat->name == "Utility") {
          ++utility;
          EXPECT_NE(e.text.find("ret="), std::string::npos);  // return values shown
        }
        if (cat->name == "PI_Log") ++user_log;
      },
      nullptr);
  // PI_StartTime, PI_ChannelHasData, PI_TrySelect, PI_EndTime.
  EXPECT_EQ(utility, 4u);
  EXPECT_EQ(user_log, 1u);
}

int select_then_read_worker(int, void*) {
  PI_Write(g_from_worker, "%d", 9);
  return 0;
}

TEST(LogViz, SelectIsStateWithReadyIndexAndNoBubble) {
  util::TempDir dir;
  pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(select_then_read_worker, 0, nullptr);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_CHANNEL* chans[] = {g_from_worker};
    PI_BUNDLE* sel = PI_CreateBundle(PI_SELECT_B, chans, 1);
    PI_StartAll();
    const int idx = PI_Select(sel);
    EXPECT_EQ(idx, 0);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    EXPECT_EQ(v, 9);
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  bool select_seen = false;
  slog.visit_window(
      slog.t_min, slog.t_max,
      [&](const slog2::StateDrawable& s) {
        const auto* cat = slog.category(s.category_id);
        if (cat && cat->name == "PI_Select") {
          select_seen = true;
          EXPECT_NE(s.end_text.find("ready=0"), std::string::npos);
        }
      },
      nullptr, nullptr);
  EXPECT_TRUE(select_seen);
}

TEST(LogViz, IoStatesNestInsideComputeState) {
  util::TempDir dir;
  pilot::run(jlog_args(dir), [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    PI_Write(g_to_worker, "%d", 1);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  slog.visit_window(
      slog.t_min, slog.t_max,
      [&](const slog2::StateDrawable& s) {
        const auto* cat = slog.category(s.category_id);
        if (!cat) return;
        if (cat->name == "Compute") EXPECT_EQ(s.depth, 0);
        if (cat->name == "PI_Read" || cat->name == "PI_Write")
          EXPECT_EQ(s.depth, 1) << cat->name;  // nested inside gray Compute
      },
      nullptr, nullptr);
}

int aborting_worker(int, void*) {
  // Wait for main's nudge so the whole system (including the service rank's
  // log file) is provably up before the abort hits.
  int nudge = 0;
  PI_Read(g_to_worker, "%d", &nudge);
  PI_Abort(9, "worker gives up");
  return 0;
}

TEST(LogViz, AbortLosesTheMpeLog) {
  // The paper, Section III-B: MPI_Abort tears down messaging before MPE can
  // gather the per-rank logs, so the CLOG-2 file is lost. The native log,
  // written incrementally, survives.
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=cj", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(aborting_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);  // blocks; the abort wakes us
        ADD_FAILURE() << "read returned despite abort";
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(res.abort_code, 9);
  EXPECT_FALSE(std::filesystem::exists(dir.file("pilot.clog2")));
  EXPECT_TRUE(std::filesystem::exists(dir.file("pilot.log")));
}

TEST(LogViz, LegendStatisticsComputeDominates) {
  // A compute-heavy program must show Compute inclusive time far above the
  // I/O categories (the paper's Fig. 2 argument).
  util::TempDir dir;
  auto args = jlog_args(dir);
  args.push_back("-pisim-scale=1");  // make PI_Compute cost real wall time
  pilot::run(args, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(
        [](int, void*) {
          int v = 0;
          PI_Read(g_to_worker, "%d", &v);
          PI_Compute(0.05);
          PI_Write(g_from_worker, "%d", v);
          return 0;
        },
        0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    PI_Write(g_to_worker, "%d", 1);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    PI_StopMain(0);
    return 0;
  });

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  const auto entries = jumpshot::legend(slog);
  double compute_excl = 0, write_incl = 0;
  for (const auto& e : entries) {
    if (e.category.name == "Compute") compute_excl = e.exclusive;
    if (e.category.name == "PI_Write") write_incl = e.inclusive;
  }
  EXPECT_GT(compute_excl, 0.04);
  EXPECT_GT(compute_excl, write_incl * 5);
}

}  // namespace

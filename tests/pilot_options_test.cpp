#include "pilot/options.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace {

struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
    argv = ptrs.data();
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** argv = nullptr;
};

pilot::Options parse(std::vector<std::string> args, int* argc_out = nullptr) {
  args.insert(args.begin(), "prog");
  Argv a(std::move(args));
  char** argv = a.argv;
  int argc = a.argc;
  auto opts = pilot::Options::parse(&argc, &argv);
  if (argc_out) *argc_out = argc;
  return opts;
}

TEST(Options, Defaults) {
  const auto o = parse({});
  EXPECT_FALSE(o.svc_calls);
  EXPECT_FALSE(o.svc_deadlock);
  EXPECT_FALSE(o.svc_jumpshot);
  EXPECT_FALSE(o.robust_log);
  EXPECT_EQ(o.check_level, 1);
  EXPECT_EQ(o.np, 0);
  EXPECT_EQ(o.out_dir, ".");
  EXPECT_EQ(o.log_basename, "pilot");
  EXPECT_FALSE(o.needs_service_rank());
}

TEST(Options, ServiceLetters) {
  const auto o = parse({"-pisvc=cdj"});
  EXPECT_TRUE(o.svc_calls);
  EXPECT_TRUE(o.svc_deadlock);
  EXPECT_TRUE(o.svc_jumpshot);
  EXPECT_TRUE(o.needs_service_rank());
}

TEST(Options, ServiceCombinable) {
  // The paper: "Options can be combined, e.g., -pisvc=cj".
  const auto o = parse({"-pisvc=c", "-pisvc=j"});
  EXPECT_TRUE(o.svc_calls);
  EXPECT_TRUE(o.svc_jumpshot);
  EXPECT_FALSE(o.svc_deadlock);
}

TEST(Options, UnknownServiceLetterRejected) {
  EXPECT_THROW(parse({"-pisvc=x"}), util::UsageError);
}

TEST(Options, ExecSubstrate) {
  EXPECT_FALSE(parse({}).exec_tasks);
  EXPECT_FALSE(parse({"-piexec=threads"}).exec_tasks);
  EXPECT_TRUE(parse({"-piexec=tasks"}).exec_tasks);
  EXPECT_THROW(parse({"-piexec=fibers"}), util::UsageError);
  EXPECT_THROW(parse({"-piexec="}), util::UsageError);
}

TEST(Options, CheckLevels) {
  EXPECT_EQ(parse({"-picheck=0"}).check_level, 0);
  EXPECT_EQ(parse({"-picheck=3"}).check_level, 3);
  EXPECT_THROW(parse({"-picheck=4"}), util::UsageError);
  EXPECT_THROW(parse({"-picheck=abc"}), util::UsageError);
}

TEST(Options, SimKnobs) {
  const auto o = parse({"-pisim-cores=7", "-pisim-scale=0.25",
                        "-pisim-latency=0.001", "-pisim-drift=0.1",
                        "-pisim-skew=0.0001", "-pisim-clockres=0.001",
                        "-pisim-seed=99", "-pisim-bandwidth=1000000"});
  EXPECT_EQ(o.sim_cores, 7u);
  EXPECT_DOUBLE_EQ(o.sim_scale, 0.25);
  EXPECT_DOUBLE_EQ(o.sim_latency, 0.001);
  EXPECT_DOUBLE_EQ(o.sim_drift, 0.1);
  EXPECT_DOUBLE_EQ(o.sim_skew, 0.0001);
  EXPECT_DOUBLE_EQ(o.sim_clockres, 0.001);
  EXPECT_EQ(o.sim_seed, 99u);
  EXPECT_DOUBLE_EQ(o.sim_bandwidth, 1000000.0);
}

TEST(Options, PathsAndNames) {
  const auto o = parse({"-piout=/tmp/logs", "-piname=run7"});
  EXPECT_EQ(o.clog2_path(), "/tmp/logs/run7.clog2");
  EXPECT_EQ(o.native_log_path(), "/tmp/logs/run7.log");
  EXPECT_EQ(o.spill_base(), "/tmp/logs/run7");
}

TEST(Options, RobustFlag) {
  EXPECT_TRUE(parse({"-pirobust"}).robust_log);
}

TEST(Options, UserArgsSurvive) {
  int argc = 0;
  parse({"-pisvc=j", "user1", "-picheck=2", "--app-flag", "-pinp=4"}, &argc);
  EXPECT_EQ(argc, 3);  // prog + user1 + --app-flag
}

TEST(Options, UnknownPilotOptionRejected) {
  EXPECT_THROW(parse({"-pityop=1"}), util::UsageError);
  EXPECT_THROW(parse({"-pisvcx=c"}), util::UsageError);
}

TEST(Options, NegativeValuesRejected) {
  EXPECT_THROW(parse({"-pinp=-3"}), util::UsageError);
  EXPECT_THROW(parse({"-pisim-scale=-1"}), util::UsageError);
  EXPECT_THROW(parse({"-pispread=-0.5"}), util::UsageError);
}

TEST(Options, LastValueWins) {
  EXPECT_EQ(parse({"-picheck=1", "-picheck=3"}).check_level, 3);
}

TEST(Options, RecordReplayPaths) {
  auto o = parse({"-pirecord=/tmp/run.prl"});
  EXPECT_EQ(o.record_path, "/tmp/run.prl");
  EXPECT_TRUE(o.replay_path.empty());

  o = parse({"-pireplay=/tmp/run.prl", "-pireplay-timeout=2.5"});
  EXPECT_EQ(o.replay_path, "/tmp/run.prl");
  EXPECT_DOUBLE_EQ(o.replay_timeout, 2.5);
  EXPECT_TRUE(o.record_path.empty());
}

TEST(Options, RecordReplayValidated) {
  EXPECT_THROW(parse({"-pirecord="}), util::UsageError);
  EXPECT_THROW(parse({"-pireplay="}), util::UsageError);
  EXPECT_THROW(parse({"-pirecord=a.prl", "-pireplay=b.prl"}), util::UsageError);
  EXPECT_THROW(parse({"-pireplay-timeout=-1"}), util::UsageError);
  EXPECT_THROW(parse({"-pireplay-timeout=soon"}), util::UsageError);
}

TEST(Options, BareFlagTyposRejected) {
  // "-pirobust"/"-pilint" are exact-match flags: a trailing typo must fail
  // loudly like any other unknown -pi option, not be silently accepted.
  EXPECT_THROW(parse({"-pirobustly"}), util::UsageError);
  EXPECT_THROW(parse({"-pilinty"}), util::UsageError);
  EXPECT_TRUE(parse({"-pirobust"}).robust_log);
  EXPECT_TRUE(parse({"-pilint"}).lint_only);
}

}  // namespace

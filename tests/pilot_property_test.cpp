// Property-style sweeps: randomized traffic through Pilot channels checked
// against locally computed oracles, across seeds (TEST_P).
#include <gtest/gtest.h>

#include <vector>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "util/prng.hpp"

namespace {

constexpr int kWorkers = 3;
constexpr int kRounds = 25;

PI_CHANNEL* g_down[kWorkers];
PI_CHANNEL* g_up[kWorkers];
std::uint64_t g_seed = 0;

// Protocol: each round main sends a type tag, then a payload of that type;
// the worker echoes back a checksum. Exercises every scalar and array path
// of the varargs engine with random values.
enum TypeTag : int {
  kTagInt,
  kTagDouble,
  kTagChar,
  kTagLongLong,
  kTagIntArray,
  kTagDoubleArray,
  kTagBytes,
  kTagCount_,
};

double checksum_int_array(const int* xs, int n) {
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += xs[i];
  return acc;
}

int property_worker(int index, void*) {
  for (int round = 0; round < kRounds; ++round) {
    int tag = 0;
    PI_Read(g_down[index], "%d", &tag);
    double checksum = 0;
    switch (tag) {
      case kTagInt: {
        int v;
        PI_Read(g_down[index], "%d", &v);
        checksum = v;
        break;
      }
      case kTagDouble: {
        double v;
        PI_Read(g_down[index], "%lf", &v);
        checksum = v;
        break;
      }
      case kTagChar: {
        char v;
        PI_Read(g_down[index], "%c", &v);
        checksum = v;
        break;
      }
      case kTagLongLong: {
        long long v;
        PI_Read(g_down[index], "%lld", &v);
        checksum = static_cast<double>(v);
        break;
      }
      case kTagIntArray: {
        int n;
        int* xs = nullptr;
        PI_Read(g_down[index], "%^d", &n, &xs);
        checksum = checksum_int_array(xs, n);
        std::free(xs);
        break;
      }
      case kTagDoubleArray: {
        double xs[16];
        PI_Read(g_down[index], "%16lf", xs);
        for (double x : xs) checksum += x;
        break;
      }
      case kTagBytes: {
        int n;
        unsigned char* xs = nullptr;
        PI_Read(g_down[index], "%^b", &n, &xs);
        for (int i = 0; i < n; ++i) checksum += xs[i];
        std::free(xs);
        break;
      }
      default:
        return 1;
    }
    PI_Write(g_up[index], "%lf", checksum);
  }
  return 0;
}

class RandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 97));

TEST_P(RandomTraffic, EveryFormatPathChecksOut) {
  g_seed = GetParam();
  pilot::run({"prop", "-picheck=3", "-piwatchdog=30"}, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(property_worker, i, nullptr);
      g_down[i] = PI_CreateChannel(PI_MAIN, w);
      g_up[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_StartAll();

    util::SplitMix64 rng(g_seed);
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kWorkers; ++i) {
        const int tag = static_cast<int>(rng.below(kTagCount_));
        PI_Write(g_down[i], "%d", tag);
        double expect = 0;
        switch (tag) {
          case kTagInt: {
            const int v = static_cast<int>(rng.range(-1000000, 1000000));
            PI_Write(g_down[i], "%d", v);
            expect = v;
            break;
          }
          case kTagDouble: {
            const double v = rng.uniform(-1e6, 1e6);
            PI_Write(g_down[i], "%lf", v);
            expect = v;
            break;
          }
          case kTagChar: {
            const char v = static_cast<char>(rng.range(1, 126));
            PI_Write(g_down[i], "%c", v);
            expect = v;
            break;
          }
          case kTagLongLong: {
            const long long v = rng.range(-4000000000LL, 4000000000LL);
            PI_Write(g_down[i], "%lld", v);
            expect = static_cast<double>(v);
            break;
          }
          case kTagIntArray: {
            const int n = static_cast<int>(rng.below(50));
            std::vector<int> xs(static_cast<std::size_t>(n));
            for (auto& x : xs) x = static_cast<int>(rng.range(-100, 100));
            PI_Write(g_down[i], "%*d", n, xs.data());
            expect = checksum_int_array(xs.data(), n);
            break;
          }
          case kTagDoubleArray: {
            double xs[16];
            for (double& x : xs) {
              x = rng.uniform(-10, 10);
              expect += x;
            }
            PI_Write(g_down[i], "%16lf", xs);
            break;
          }
          case kTagBytes: {
            const int n = static_cast<int>(1 + rng.below(200));
            std::vector<unsigned char> xs(static_cast<std::size_t>(n));
            for (auto& x : xs) {
              x = static_cast<unsigned char>(rng.below(256));
              expect += x;
            }
            PI_Write(g_down[i], "%*b", n, xs.data());
            break;
          }
          default: break;
        }
        double got = 0;
        PI_Read(g_up[i], "%lf", &got);
        EXPECT_DOUBLE_EQ(got, expect) << "seed=" << g_seed << " round=" << round
                                      << " worker=" << i << " tag=" << tag;
      }
    }
    PI_StopMain(0);
    return 0;
  });
}

// Token ring: each worker adds its index and forwards; after N laps the
// token's value is fully determined.
constexpr int kRing = 5;
PI_CHANNEL* g_ring[kRing + 1];  // ring[i]: node i-1 -> node i (0 = main->first)
PI_CHANNEL* g_ring_back = nullptr;

int ring_worker(int index, void*) {
  constexpr int kLaps = 10;
  for (int lap = 0; lap < kLaps; ++lap) {
    long token = 0;
    PI_Read(g_ring[index], "%ld", &token);
    token += index + 1;
    if (index == kRing - 1) {
      PI_Write(g_ring_back, "%ld", token);
    } else {
      PI_Write(g_ring[index + 1], "%ld", token);
    }
  }
  return 0;
}

TEST(RingTopology, TokenAccumulatesDeterministically) {
  pilot::run({"ring", "-piwatchdog=30"}, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    std::vector<PI_PROCESS*> nodes;
    for (int i = 0; i < kRing; ++i)
      nodes.push_back(PI_CreateProcess(ring_worker, i, nullptr));
    g_ring[0] = PI_CreateChannel(PI_MAIN, nodes[0]);
    for (int i = 1; i < kRing; ++i)
      g_ring[i] = PI_CreateChannel(nodes[static_cast<std::size_t>(i - 1)],
                                   nodes[static_cast<std::size_t>(i)]);
    g_ring_back = PI_CreateChannel(nodes[kRing - 1], PI_MAIN);
    PI_StartAll();

    long token = 0;
    constexpr int kLaps = 10;
    for (int lap = 0; lap < kLaps; ++lap) {
      PI_Write(g_ring[0], "%ld", token);
      PI_Read(g_ring_back, "%ld", &token);
    }
    // Each lap adds 1+2+...+kRing = kRing*(kRing+1)/2.
    EXPECT_EQ(token, static_cast<long>(kLaps) * kRing * (kRing + 1) / 2);
    PI_StopMain(0);
    return 0;
  });
}

}  // namespace

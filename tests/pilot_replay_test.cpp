// Record/replay (-pirecord / -pireplay): the .prl format, divergence
// detection (RP01..RP07), the trace cross-check (RP20..RP22), and the
// headline property — two replays of one .prl produce byte-identical
// per-rank event sequences (timestamps excluded), for a PI_Select task
// farm and for both buggy collision-query instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "clog2/clog2.hpp"
#include "mpisim/world.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "replay/crosscheck.hpp"
#include "replay/engine.hpp"
#include "replay/prl.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "workloads/collision_app.hpp"

namespace {

using replay::Event;
using replay::EventKind;

// --- .prl format -------------------------------------------------------------

replay::Log sample_log() {
  replay::Log log;
  log.per_rank.resize(2);
  log.per_rank[0].push_back({EventKind::kRecvMatch, 1, 0, 7});
  log.per_rank[0].push_back({EventKind::kSelect, 3, 2, 0});
  log.per_rank[1].push_back({EventKind::kBarrier, 0, 0, 0});
  log.per_rank[1].push_back({EventKind::kHasData, 5, 1, 0});
  log.per_rank[1].push_back({EventKind::kTrySelect, 3, -1, 0});
  log.per_rank[1].push_back({EventKind::kProbeMatch, 0, 0, 12});
  return log;
}

TEST(Prl, SerializeParseRoundtrip) {
  const replay::Log log = sample_log();
  EXPECT_EQ(replay::parse(replay::serialize(log)), log);
  EXPECT_EQ(log.nranks(), 2);
  EXPECT_EQ(log.total_events(), 6u);
}

TEST(Prl, FileRoundtripAndTextDump) {
  util::TempDir dir;
  const auto path = dir.file("sample.prl");
  replay::write_file(path, sample_log());
  EXPECT_EQ(replay::read_file(path), sample_log());

  const std::string text = replay::to_text(sample_log());
  EXPECT_NE(text.find("recv"), std::string::npos);
  EXPECT_NE(text.find("select"), std::string::npos);
  EXPECT_NE(text.find("barrier"), std::string::npos);
  EXPECT_NE(text.find("2 rank(s)"), std::string::npos);
}

TEST(Prl, RejectsBadMagic) {
  auto bytes = replay::serialize(sample_log());
  bytes[0] ^= 0xff;
  EXPECT_THROW(replay::parse(bytes), util::IoError);
}

TEST(Prl, RejectsTruncationAtEveryLength) {
  const auto bytes = replay::serialize(sample_log());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(n));
    EXPECT_THROW(replay::parse(cut), util::IoError) << "prefix length " << n;
  }
}

TEST(Prl, RejectsTrailingGarbage) {
  auto bytes = replay::serialize(sample_log());
  bytes.push_back(0);
  EXPECT_THROW(replay::parse(bytes), util::IoError);
}

TEST(Prl, RejectsUnknownEventKind) {
  replay::Log log = sample_log();
  auto bytes = replay::serialize(log);
  // First event byte sits right after magic+version+nranks+count.
  bytes[4 + 4 + 4 + 8] = 99;
  EXPECT_THROW(replay::parse(bytes), util::IoError);
}

// --- mpisim-level enforcement (wildcard receives, barriers) ------------------

TEST(ReplayMpisim, WildcardReceiveOrderEnforcedAgainstSkew) {
  util::TempDir dir;
  const auto prl = dir.file("wild.prl");

  // Record: rank 2 is slowed, so rank 1 almost surely matches first.
  std::vector<int> recorded;
  {
    auto eng = replay::Engine::make_recorder(prl.string());
    eng->begin_run(3);
    mpisim::World::Config cfg;
    cfg.nprocs = 3;
    cfg.replay = eng.get();
    mpisim::World w(cfg);
    w.run([&](mpisim::Comm& c) {
      if (c.rank() == 0) {
        for (int i = 0; i < 2; ++i) {
          int v = 0;
          const auto st = c.recv(mpisim::kAnySource, 7, &v, sizeof v);
          recorded.push_back(st.source);
        }
      } else {
        if (c.rank() == 2)
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const int v = c.rank();
        c.send(0, 7, &v, sizeof v);
      }
      return 0;
    });
    eng->save();
  }
  ASSERT_EQ(recorded.size(), 2u);

  // Replay with the skew reversed: matches must still follow the log.
  std::vector<int> replayed;
  auto eng = replay::Engine::make_replayer(prl.string(), 5.0);
  eng->begin_run(3);
  mpisim::World::Config cfg;
  cfg.nprocs = 3;
  cfg.replay = eng.get();
  mpisim::World w(cfg);
  w.run([&](mpisim::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const auto st = c.recv(mpisim::kAnySource, 7, &v, sizeof v);
        replayed.push_back(st.source);
      }
    } else {
      if (c.rank() == 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const int v = c.rank();
      c.send(0, 7, &v, sizeof v);
    }
    return 0;
  });
  EXPECT_EQ(replayed, recorded);
  EXPECT_FALSE(eng->diverged());
  EXPECT_EQ(eng->finish(), 0u);
}

TEST(ReplayMpisim, BarrierArrivalOrderRecordedAndReplayed) {
  util::TempDir dir;
  const auto prl = dir.file("barrier.prl");
  {
    auto eng = replay::Engine::make_recorder(prl.string());
    eng->begin_run(3);
    mpisim::World::Config cfg;
    cfg.nprocs = 3;
    cfg.replay = eng.get();
    mpisim::World w(cfg);
    w.run([&](mpisim::Comm& c) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * c.rank()));
      c.barrier();
      return 0;
    });
    eng->save();
  }

  const replay::Log log = replay::read_file(prl);
  ASSERT_EQ(log.nranks(), 3);
  std::vector<int> positions;
  for (const auto& events : log.per_rank) {
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, EventKind::kBarrier);
    positions.push_back(events[0].a);
  }
  std::sort(positions.begin(), positions.end());
  EXPECT_EQ(positions, (std::vector<int>{0, 1, 2}));

  // Replay with the sleep order reversed still completes: each rank enters
  // the barrier in its recorded slot.
  auto eng = replay::Engine::make_replayer(prl.string(), 5.0);
  eng->begin_run(3);
  mpisim::World::Config cfg;
  cfg.nprocs = 3;
  cfg.replay = eng.get();
  mpisim::World w(cfg);
  const auto result = w.run([&](mpisim::Comm& c) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * (2 - c.rank())));
    c.barrier();
    return 0;
  });
  EXPECT_FALSE(result.aborted);
  EXPECT_FALSE(eng->diverged());
  EXPECT_EQ(eng->finish(), 0u);
}

TEST(ReplayMpisim, MissingRecordedMessageRaisesRP03) {
  util::TempDir dir;
  const auto prl = dir.file("silent.prl");
  {
    auto eng = replay::Engine::make_recorder(prl.string());
    eng->begin_run(2);
    mpisim::World::Config cfg;
    cfg.nprocs = 2;
    cfg.replay = eng.get();
    mpisim::World w(cfg);
    w.run([&](mpisim::Comm& c) {
      if (c.rank() == 0) {
        int v = 0;
        c.recv(mpisim::kAnySource, 7, &v, sizeof v);
      } else {
        const int v = 1;
        c.send(0, 7, &v, sizeof v);
      }
      return 0;
    });
    eng->save();
  }

  // Replay where the recorded sender never sends: the recorded match can
  // never materialize, so rank 0 times out into RP03.
  auto eng = replay::Engine::make_replayer(prl.string(), 0.2);
  eng->begin_run(2);
  mpisim::World::Config cfg;
  cfg.nprocs = 2;
  cfg.replay = eng.get();
  mpisim::World w(cfg);
  EXPECT_THROW(w.run([&](mpisim::Comm& c) {
                 if (c.rank() == 0) {
                   int v = 0;
                   c.recv(mpisim::kAnySource, 7, &v, sizeof v);
                 }
                 return 0;
               }),
               replay::DivergenceError);
  EXPECT_TRUE(eng->diverged());
  EXPECT_TRUE(eng->report().has("RP03")) << eng->report().to_text();
}

// --- a PI_Select task farm with deliberately racy completion order -----------

constexpr int kFarmWorkers = 3;
constexpr int kFarmTasks = 4;  // per worker

PI_CHANNEL* g_farm_results[kFarmWorkers];
PI_BUNDLE* g_farm_bundle = nullptr;

int farm_worker(int index, void*) {
  for (int t = 0; t < kFarmTasks; ++t) {
    std::this_thread::sleep_for(
        std::chrono::microseconds((index * 37 + t * 13) % 150));
    PI_Write(g_farm_results[index], "%d", index * 100 + t);
  }
  return 0;
}

/// Runs the farm; `order` (optional) collects (branch, value) per select.
pilot::RunResult run_farm(std::vector<std::string> extra,
                          std::vector<int>* order = nullptr) {
  std::vector<std::string> args = {"prog", "-piwatchdog=30"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [order](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* ws[kFarmWorkers];
    for (int i = 0; i < kFarmWorkers; ++i)
      ws[i] = PI_CreateProcess(farm_worker, i, nullptr);
    for (int i = 0; i < kFarmWorkers; ++i)
      g_farm_results[i] = PI_CreateChannel(ws[i], PI_MAIN);
    g_farm_bundle = PI_CreateBundle(PI_SELECT_B, g_farm_results, kFarmWorkers);
    PI_StartAll();
    for (int n = 0; n < kFarmWorkers * kFarmTasks; ++n) {
      const int ready = PI_Select(g_farm_bundle);
      int v = 0;
      PI_Read(g_farm_results[ready], "%d", &v);
      if (order) order->push_back(ready * 1000 + v);
    }
    PI_StopMain(0);
    return 0;
  });
}

std::string fingerprint(const std::filesystem::path& clog2_path) {
  return replay::trace_fingerprint(clog2::read_file(clog2_path));
}

TEST(ReplayPilot, SelectFarmReplaysAreByteIdentical) {
  util::TempDir dir;
  const std::string prl = dir.file("farm.prl").string();
  const std::string out = "-piout=" + dir.path().string();

  const auto rec = run_farm({"-pisvc=cj", out, "-piname=rec", "-pirecord=" + prl});
  ASSERT_FALSE(rec.aborted);

  std::vector<int> order1, order2;
  const auto r1 =
      run_farm({"-pisvc=cj", out, "-piname=rep1", "-pireplay=" + prl}, &order1);
  const auto r2 =
      run_farm({"-pisvc=cj", out, "-piname=rep2", "-pireplay=" + prl}, &order2);
  ASSERT_FALSE(r1.aborted);
  ASSERT_FALSE(r2.aborted);
  EXPECT_FALSE(r1.replay_diverged) << r1.replay.to_text();
  EXPECT_FALSE(r2.replay_diverged) << r2.replay.to_text();

  // The select outcomes are forced, so both replays consume the farm's
  // results in the exact recorded order...
  EXPECT_EQ(order1, order2);
  // ...and the visual logs agree event-for-event once timestamps are masked
  // — including with the record run itself.
  const std::string f_rec = fingerprint(dir.file("rec.clog2"));
  const std::string f1 = fingerprint(dir.file("rep1.clog2"));
  const std::string f2 = fingerprint(dir.file("rep2.clog2"));
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(f_rec, f1);

  // The recorded log itself holds the farm's select decisions.
  const replay::Log log = replay::read_file(prl);
  std::size_t selects = 0;
  for (const auto& events : log.per_rank)
    for (const Event& e : events)
      if (e.kind == EventKind::kSelect) ++selects;
  EXPECT_EQ(selects, static_cast<std::size_t>(kFarmWorkers * kFarmTasks));
}

TEST(ReplayPilot, CollisionQueryBothInstancesReplayDeterministically) {
  namespace wc = workloads::collisions;
  for (const auto variant : {wc::Variant::kInstanceA, wc::Variant::kInstanceB}) {
    SCOPED_TRACE(wc::variant_name(variant));
    util::TempDir dir;
    const std::string prl = dir.file("run.prl").string();

    wc::AppConfig cfg;
    cfg.variant = variant;
    cfg.workers = 3;
    cfg.records = 3000;
    cfg.query_rounds = 2;
    cfg.costs.parse_per_byte = 0;
    cfg.costs.query_per_record = 0;
    const std::string out = "-piout=" + dir.path().string();

    cfg.pilot_args = {"-piwatchdog=30", "-pisvc=cj", out, "-piname=rec",
                      "-pirecord=" + prl};
    const auto rec = wc::run_app(cfg);
    ASSERT_FALSE(rec.run.aborted);
    ASSERT_TRUE(rec.correct());

    std::vector<std::string> fps;
    for (const std::string name : {"rep1", "rep2"}) {
      cfg.pilot_args = {"-piwatchdog=30", "-pisvc=cj", out, "-piname=" + name,
                        "-pireplay=" + prl};
      const auto rep = wc::run_app(cfg);
      ASSERT_FALSE(rep.run.aborted);
      EXPECT_FALSE(rep.run.replay_diverged) << rep.run.replay.to_text();
      ASSERT_TRUE(rep.correct());
      fps.push_back(fingerprint(dir.file(name + ".clog2")));
    }
    EXPECT_EQ(fps[0], fps[1]);
    EXPECT_EQ(fps[0], fingerprint(dir.file("rec.clog2")));
  }
}

// --- RP divergence diagnostics at the Pilot level ----------------------------

PI_CHANNEL* g_poll_chan = nullptr;

int poll_writer(int, void*) {
  PI_Write(g_poll_chan, "%d", 42);
  return 0;
}

/// One worker writes one value; PI_MAIN polls PI_ChannelHasData `polls`
/// times, then reads. Each poll is one recorded nondeterministic event.
pilot::RunResult run_poller(int polls, std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog", "-piwatchdog=30"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [polls](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(poll_writer, 0, nullptr);
    g_poll_chan = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    for (int i = 0; i < polls; ++i) PI_ChannelHasData(g_poll_chan);
    int v = 0;
    PI_Read(g_poll_chan, "%d", &v);
    EXPECT_EQ(v, 42);
    PI_StopMain(0);
    return 0;
  });
}

TEST(ReplayDivergence, ExtraOperationRaisesRP01) {
  util::TempDir dir;
  const std::string prl = dir.file("short.prl").string();
  ASSERT_FALSE(run_poller(1, {"-pirecord=" + prl}).aborted);

  const auto res = run_poller(2, {"-pireplay=" + prl});
  EXPECT_TRUE(res.replay_diverged);
  ASSERT_TRUE(res.replay.has("RP01")) << res.replay.to_text();
  const auto diags = res.replay.with_id("RP01");
  const auto& d = diags.front();
  EXPECT_NE(d.file.find("pilot_replay_test.cpp"), std::string::npos);
  EXPECT_GT(d.line, 0);
}

TEST(ReplayDivergence, FewerOperationsWarnRP06ButComplete) {
  util::TempDir dir;
  const std::string prl = dir.file("long.prl").string();
  ASSERT_FALSE(run_poller(2, {"-pirecord=" + prl}).aborted);

  const auto res = run_poller(1, {"-pireplay=" + prl});
  EXPECT_FALSE(res.aborted);
  EXPECT_FALSE(res.replay_diverged);
  ASSERT_TRUE(res.replay.has("RP06")) << res.replay.to_text();
  EXPECT_EQ(res.replay.count(analyze::Severity::kError), 0u);
}

std::atomic<bool> g_use_try_select{false};
PI_CHANNEL* g_sel_chan[1];
PI_BUNDLE* g_sel_bundle = nullptr;

int sel_writer(int, void*) {
  PI_Write(g_sel_chan[0], "%d", 7);
  return 0;
}

pilot::RunResult run_selector(std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog", "-piwatchdog=30"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(sel_writer, 0, nullptr);
    g_sel_chan[0] = PI_CreateChannel(w, PI_MAIN);
    g_sel_bundle = PI_CreateBundle(PI_SELECT_B, g_sel_chan, 1);
    PI_StartAll();
    if (g_use_try_select) {
      PI_TrySelect(g_sel_bundle);
    } else {
      PI_Select(g_sel_bundle);
    }
    int v = 0;
    PI_Read(g_sel_chan[0], "%d", &v);
    PI_StopMain(0);
    return 0;
  });
}

TEST(ReplayDivergence, DifferentOperationKindRaisesRP02) {
  util::TempDir dir;
  const std::string prl = dir.file("kind.prl").string();
  g_use_try_select = false;
  ASSERT_FALSE(run_selector({"-pirecord=" + prl}).aborted);

  g_use_try_select = true;
  const auto res = run_selector({"-pireplay=" + prl});
  g_use_try_select = false;
  EXPECT_TRUE(res.replay_diverged);
  ASSERT_TRUE(res.replay.has("RP02")) << res.replay.to_text();
  const auto diags = res.replay.with_id("RP02");
  const auto& d = diags.front();
  EXPECT_NE(d.file.find("pilot_replay_test.cpp"), std::string::npos);
  EXPECT_GT(d.line, 0);
}

std::atomic<int> g_active_writer{0};
PI_CHANNEL* g_gate_chan[2];
PI_BUNDLE* g_gate_bundle = nullptr;

int gated_worker(int index, void*) {
  if (index == g_active_writer.load()) PI_Write(g_gate_chan[index], "%d", index);
  return 0;
}

pilot::RunResult run_gated(std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog", "-piwatchdog=30"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < 2; ++i) {
      PI_PROCESS* w = PI_CreateProcess(gated_worker, i, nullptr);
      g_gate_chan[i] = PI_CreateChannel(w, PI_MAIN);
    }
    g_gate_bundle = PI_CreateBundle(PI_SELECT_B, g_gate_chan, 2);
    PI_StartAll();
    const int ready = PI_Select(g_gate_bundle);
    int v = 0;
    PI_Read(g_gate_chan[ready], "%d", &v);
    PI_StopMain(0);
    return 0;
  });
}

TEST(ReplayDivergence, RecordedBranchNeverReadyRaisesRP04) {
  util::TempDir dir;
  const std::string prl = dir.file("gate.prl").string();
  g_active_writer = 0;
  ASSERT_FALSE(run_gated({"-pirecord=" + prl}).aborted);

  // The modified program: only worker 1 ever writes, so the recorded
  // branch 0 can never become ready.
  g_active_writer = 1;
  const auto res = run_gated({"-pireplay=" + prl, "-pireplay-timeout=0.2"});
  g_active_writer = 0;
  EXPECT_TRUE(res.replay_diverged);
  ASSERT_TRUE(res.replay.has("RP04")) << res.replay.to_text();
  const auto diags = res.replay.with_id("RP04");
  const auto& d = diags.front();
  EXPECT_NE(d.file.find("pilot_replay_test.cpp"), std::string::npos);
  EXPECT_GT(d.line, 0);
}

std::atomic<int> g_noop_runs{0};

int noop_worker(int, void*) {
  ++g_noop_runs;
  return 0;
}

pilot::RunResult run_noops(int workers, std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog", "-piwatchdog=30"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [workers](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < workers; ++i) PI_CreateProcess(noop_worker, i, nullptr);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
}

TEST(ReplayDivergence, TopologyMismatchFailsFastWithRP05) {
  util::TempDir dir;
  const std::string prl = dir.file("topo.prl").string();
  ASSERT_FALSE(run_noops(3, {"-pirecord=" + prl}).aborted);

  g_noop_runs = 0;
  const auto res = run_noops(2, {"-pireplay=" + prl});
  EXPECT_TRUE(res.replay_diverged);
  ASSERT_TRUE(res.replay.has("RP05")) << res.replay.to_text();
  // Fail-fast at PI_StartAll: no work function ever launched.
  EXPECT_EQ(g_noop_runs.load(), 0);
}

TEST(ReplayDivergence, CorruptLogRaisesRP07) {
  util::TempDir dir;
  const auto garbage = dir.file("garbage.prl");
  util::write_file(garbage, std::string("not a prl file"));

  try {
    replay::Engine::make_replayer(garbage.string(), 1.0);
    FAIL() << "corrupt .prl accepted";
  } catch (const replay::DivergenceError& e) {
    EXPECT_EQ(e.diagnostic().id, "RP07");
  }

  // Through the runtime: the run fails before any thread starts.
  g_noop_runs = 0;
  const auto res = run_noops(1, {"-pireplay=" + garbage.string()});
  EXPECT_TRUE(res.replay_diverged);
  EXPECT_TRUE(res.replay.has("RP07")) << res.replay.to_text();
  EXPECT_EQ(g_noop_runs.load(), 0);

  // A truncated but genuine log is RP07 too.
  const std::string good = dir.file("good.prl").string();
  ASSERT_FALSE(run_noops(1, {"-pirecord=" + good}).aborted);
  const auto bytes = util::read_file(good);
  ASSERT_GT(bytes.size(), 4u);
  const auto cut = dir.file("cut.prl");
  util::write_file(cut, std::vector<std::uint8_t>(
                            bytes.begin(), bytes.end() - 3));
  const auto res2 = run_noops(1, {"-pireplay=" + cut.string()});
  EXPECT_TRUE(res2.replay_diverged);
  EXPECT_TRUE(res2.replay.has("RP07")) << res2.replay.to_text();
}

// --- trace/log cross-check (pilot-tracecheck --replay) -----------------------

TEST(CrossCheck, CleanRunAgreesWithItsOwnLog) {
  util::TempDir dir;
  const std::string prl = dir.file("farm.prl").string();
  const auto rec = run_farm({"-pisvc=cj", "-piout=" + dir.path().string(),
                             "-piname=rec", "-pirecord=" + prl});
  ASSERT_FALSE(rec.aborted);

  const auto trace = clog2::read_file(dir.file("rec.clog2"));
  const auto log = replay::read_file(prl);
  const auto rep = replay::cross_check(trace, log);
  EXPECT_EQ(rep.finding_count(), 0u) << rep.to_text();
}

TEST(CrossCheck, DetectsTamperedAndMismatchedLogs) {
  util::TempDir dir;
  const std::string prl = dir.file("farm.prl").string();
  const auto rec = run_farm({"-pisvc=cj", "-piout=" + dir.path().string(),
                             "-piname=rec", "-pirecord=" + prl});
  ASSERT_FALSE(rec.aborted);
  const auto trace = clog2::read_file(dir.file("rec.clog2"));
  const replay::Log original = replay::read_file(prl);

  // Flip one recorded select branch -> RP22.
  {
    replay::Log tampered = original;
    bool flipped = false;
    for (auto& events : tampered.per_rank) {
      for (Event& e : events)
        if (e.kind == EventKind::kSelect) {
          e.b = (e.b + 1) % kFarmWorkers;
          flipped = true;
          break;
        }
      if (flipped) break;
    }
    ASSERT_TRUE(flipped);
    EXPECT_TRUE(replay::cross_check(trace, tampered).has("RP22"));
  }

  // Drop one recorded select -> RP21 (count disagreement).
  {
    replay::Log tampered = original;
    bool dropped = false;
    for (auto& events : tampered.per_rank) {
      for (std::size_t i = 0; i < events.size(); ++i)
        if (events[i].kind == EventKind::kSelect) {
          events.erase(events.begin() + static_cast<long>(i));
          dropped = true;
          break;
        }
      if (dropped) break;
    }
    ASSERT_TRUE(dropped);
    EXPECT_TRUE(replay::cross_check(trace, tampered).has("RP21"));
  }

  // A log for a different topology -> RP20.
  {
    replay::Log tampered = original;
    tampered.per_rank.emplace_back();
    EXPECT_TRUE(replay::cross_check(trace, tampered).has("RP20"));
  }
}

}  // namespace

// Robust MPE logging (-pirobust) + mpe::salvage — the paper's future work:
// keep the visual log recoverable even when the program aborts.
#include <gtest/gtest.h>

#include "mpe/mpe.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "slog2/slog2.hpp"
#include "util/fs.hpp"

namespace {

PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;

int echo_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Write(g_from_worker, "%d", v + 1);
  return 0;
}

int abort_after_traffic_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Write(g_from_worker, "%d", v + 1);
  PI_Read(g_to_worker, "%d", &v);  // second message received, then boom
  PI_Abort(13, "simulated crash");
  return 0;
}

TEST(RobustLog, SalvageRecoversTraceAfterAbort) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=j", "-pirobust", "-piout=" + dir.path().string(),
       "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(abort_after_traffic_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        EXPECT_EQ(v, 2);
        PI_Write(g_to_worker, "%d", 2);
        // Block; the worker's abort wakes us.
        PI_Read(g_from_worker, "%d", &v);
        ADD_FAILURE() << "read returned despite abort";
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(res.abort_code, 13);

  // The ordinary MPE log is lost (Section III-B)...
  EXPECT_FALSE(std::filesystem::exists(dir.file("pilot.clog2")));
  // ...but the spill files survive and salvage reconstructs a trace.
  const auto salvaged = mpe::salvage((dir.path() / "pilot").string());
  EXPECT_EQ(salvaged.nranks, 2);
  EXPECT_GT(salvaged.count<clog2::EventRec>(), 8u);  // states + bubbles
  EXPECT_GE(salvaged.count<clog2::MsgRec>(), 5u);    // 3 msgs logged on both ends
  EXPECT_GT(salvaged.count<clog2::StateDef>(), 0u);  // defs recovered too

  // It converts and renders like a normal trace (unclosed states expected:
  // the program died mid-call).
  const auto slog = slog2::convert(salvaged);
  EXPECT_GT(slog.stats.total_states, 0u);
  EXPECT_GT(slog.stats.total_arrows, 0u);
}

TEST(RobustLog, SpillsRemovedAfterCleanFinish) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=j", "-pirobust", "-piout=" + dir.path().string(),
       "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  // Clean run: the real log exists, the crash-recovery spills are cleaned.
  EXPECT_TRUE(std::filesystem::exists(dir.file("pilot.clog2")));
  EXPECT_FALSE(std::filesystem::exists(dir.file("pilot.defs.spill")));
  EXPECT_FALSE(std::filesystem::exists(dir.file("pilot.rank0.spill")));
  EXPECT_FALSE(std::filesystem::exists(dir.file("pilot.rank1.spill")));
}

TEST(RobustLog, SalvagedMatchesRegularLogOnCleanRun) {
  // With cleanup suppressed (direct Logger use), the salvaged trace must
  // carry the same instances as the regular merged one.
  util::TempDir dir;
  mpisim::World::Config wcfg;
  wcfg.nprocs = 3;
  wcfg.time_scale = 0;
  wcfg.watchdog_seconds = 20;
  mpisim::World world(wcfg);

  mpe::Logger::Options opts;
  opts.spill_base = (dir.path() / "t").string();
  opts.merge_base_cost = 0;
  opts.merge_cost_per_record = 0;
  mpe::Logger logger(world, opts);
  const int a = logger.get_event_number();
  const int b = logger.get_event_number();
  logger.define_state(a, b, "S", "red");
  logger.write_spill_defs();

  // Log, but *don't* finish: simulates records that never got gathered.
  world.run([&](mpisim::Comm& c) {
    for (int i = 0; i < 5; ++i) {
      logger.log_event(c, a, "x");
      logger.log_event(c, b);
    }
    if (c.rank() == 0) logger.log_send(c, 1, 9, 64);
    if (c.rank() == 1) logger.log_receive(c, 0, 9, 64);
    return 0;
  });

  const auto salvaged = mpe::salvage(opts.spill_base);
  EXPECT_EQ(salvaged.nranks, 3);
  EXPECT_EQ(salvaged.count<clog2::EventRec>(), 3u * 10);
  EXPECT_EQ(salvaged.count<clog2::MsgRec>(), 2u);
  EXPECT_EQ(salvaged.count<clog2::StateDef>(), 1u);

  // Timestamps must be globally sorted in the salvaged stream.
  double prev = -1;
  for (const auto& rec : salvaged.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      EXPECT_GE(e->timestamp, prev);
      prev = e->timestamp;
    }
  }
  const auto slog = slog2::convert(salvaged);
  EXPECT_EQ(slog.stats.total_states, 15u);
  EXPECT_EQ(slog.stats.total_arrows, 1u);
  EXPECT_TRUE(slog.stats.clean());
}

TEST(RobustLog, TruncatedSpillTailDropped) {
  util::TempDir dir;
  mpisim::World::Config wcfg;
  wcfg.nprocs = 1;
  wcfg.time_scale = 0;
  mpisim::World world(wcfg);
  mpe::Logger::Options opts;
  opts.spill_base = (dir.path() / "t").string();
  mpe::Logger logger(world, opts);
  const int id = logger.get_event_number();
  logger.define_event(id, "e", "yellow");
  logger.write_spill_defs();
  world.run([&](mpisim::Comm& c) {
    for (int i = 0; i < 10; ++i) logger.log_event(c, id, "payload");
    return 0;
  });

  // Chop the last few bytes, as a crash mid-write would.
  const auto path = dir.file("t.rank0.spill");
  auto bytes = util::read_file(path);
  bytes.resize(bytes.size() - 3);
  util::write_file(path, bytes);

  const auto salvaged = mpe::salvage(opts.spill_base);
  EXPECT_EQ(salvaged.count<clog2::EventRec>(), 9u);  // tail record dropped
}

TEST(RobustLog, SalvageWithoutSpillsThrows) {
  util::TempDir dir;
  EXPECT_THROW(mpe::salvage((dir.path() / "nothing").string()), util::IoError);
}

TEST(RobustLog, SalvageAppliesClockCorrection) {
  util::TempDir dir;
  mpisim::World::Config wcfg;
  wcfg.nprocs = 2;
  wcfg.time_scale = 0;
  wcfg.clock_max_offset = 0.4;
  wcfg.seed = 21;
  mpisim::World world(wcfg);
  mpe::Logger::Options opts;
  opts.spill_base = (dir.path() / "t").string();
  mpe::Logger logger(world, opts);
  const int id = logger.get_event_number();
  logger.define_event(id, "mark", "yellow");
  logger.write_spill_defs();
  world.run([&](mpisim::Comm& c) {
    logger.log_sync_clocks(c);  // sync samples reach the spill too
    c.barrier();
    logger.log_event(c, id);
    return 0;
  });

  const auto salvaged = mpe::salvage(opts.spill_base);
  std::vector<double> stamps;
  for (const auto& rec : salvaged.records)
    if (const auto* e = std::get_if<clog2::EventRec>(&rec))
      stamps.push_back(e->timestamp);
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_LT(std::abs(stamps[0] - stamps[1]), 0.05);  // offset (0.4s) corrected
}

}  // namespace

// Service event wire codec + extra lifecycle misuse cases.
#include <gtest/gtest.h>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "pilot/service.hpp"
#include "util/bytebuf.hpp"

namespace {

TEST(ServiceCodec, EncodingsAreDistinctAndNonEmpty) {
  const auto call = pilot::Service::encode_call("P1 PI_Write C2 a.c:10");
  const auto write = pilot::Service::encode_write(3);
  const auto wait = pilot::Service::encode_wait({1, 2, 3}, "a.c:10", "P1");
  const auto consume = pilot::Service::encode_consume(3, 2);
  const auto resume = pilot::Service::encode_resume();
  const auto done = pilot::Service::encode_done();

  for (const auto* msg : {&call, &write, &wait, &consume, &resume, &done})
    EXPECT_FALSE(msg->empty());
  // Kind bytes must differ across all message types.
  EXPECT_NE(call[0], write[0]);
  EXPECT_NE(write[0], wait[0]);
  EXPECT_NE(wait[0], consume[0]);
  EXPECT_NE(consume[0], resume[0]);
  EXPECT_NE(resume[0], done[0]);
}

TEST(ServiceCodec, WaitCarriesChannelsSiteAndName) {
  const auto bytes = pilot::Service::encode_wait({7, 9}, "lab2.c:17", "Alice");
  util::ByteReader r(bytes);
  (void)r.u8();  // kind
  EXPECT_EQ(r.u32(), 2u);
  EXPECT_EQ(r.i32(), 7);
  EXPECT_EQ(r.i32(), 9);
  EXPECT_EQ(r.str(), "lab2.c:17");
  EXPECT_EQ(r.str(), "Alice");
  EXPECT_TRUE(r.at_end());
}

TEST(ServiceCodec, ConsumeCarriesChannelAndCount) {
  const auto bytes = pilot::Service::encode_consume(5, 12);
  util::ByteReader r(bytes);
  (void)r.u8();
  EXPECT_EQ(r.i32(), 5);
  EXPECT_EQ(r.u32(), 12u);
  EXPECT_TRUE(r.at_end());
}

// --- extra lifecycle misuse --------------------------------------------------

PI_CHANNEL* g_chan = nullptr;

TEST(Lifecycle, StopMainFromWorkerRejected) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_CreateProcess(
                                [](int, void*) {
                                  PI_StopMain(0);  // only PI_MAIN may
                                  return 0;
                                },
                                0, nullptr);
                            PI_StartAll();
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(Lifecycle, StartAllTwiceRejected) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_StartAll();
                            PI_StartAll();
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(Lifecycle, ConfigureTwiceRejected) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_Configure(&argc, &argv);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(Lifecycle, IoAfterStopMainRejected) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_PROCESS* w = PI_CreateProcess(
                                [](int, void*) { return 0; }, 0, nullptr);
                            g_chan = PI_CreateChannel(PI_MAIN, w);
                            PI_StartAll();
                            PI_StopMain(0);
                            PI_Write(g_chan, "%d", 1);  // the world is gone
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(Lifecycle, WorkerCallingStartTimeWorks) {
  const auto res = pilot::run({"prog", "-piwatchdog=20"}, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_CreateProcess(
        [](int, void*) {
          PI_StartTime();
          const double dt = PI_EndTime();
          EXPECT_GE(dt, 0.0);
          return 0;
        },
        0, nullptr);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(res.aborted);
}

}  // namespace

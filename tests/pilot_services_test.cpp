// Native call log (-pisvc=c) and the integrated deadlock detector
// (-pisvc=d) — Pilot's pre-existing services that the paper's visual log
// complements.
#include <gtest/gtest.h>

#include <vector>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "util/fs.hpp"

namespace {

PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;
PI_CHANNEL* g_a_to_b = nullptr;
PI_CHANNEL* g_b_to_a = nullptr;

int echo_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Write(g_from_worker, "%d", v * 2);
  return 0;
}

TEST(NativeLog, RecordsApiCallsWithProcessAndSite) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=c", "-piout=" + dir.path().string(), "-piwatchdog=20"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        EXPECT_EQ(PI_IsLogging(), 1);
        PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
        PI_SetName(w, "Echo");
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 21);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        EXPECT_EQ(v, 42);
        PI_Log("checkpoint reached");
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);

  const std::string log = util::read_text_file(dir.file("pilot.log"));
  EXPECT_NE(log.find("PI_Write"), std::string::npos);
  EXPECT_NE(log.find("PI_Read"), std::string::npos);
  EXPECT_NE(log.find("PI_StopMain"), std::string::npos);
  EXPECT_NE(log.find("PI_MAIN"), std::string::npos);
  EXPECT_NE(log.find("Echo"), std::string::npos);          // PI_SetName honoured
  EXPECT_NE(log.find("checkpoint reached"), std::string::npos);  // PI_Log
  EXPECT_NE(log.find("pilot_services_test.cpp"), std::string::npos);  // call site
}

TEST(NativeLog, DisabledByDefault) {
  util::TempDir dir;
  pilot::run({"prog", "-piout=" + dir.path().string(), "-piwatchdog=20"},
             [](int argc, char** argv) {
               PI_Configure(&argc, &argv);
               EXPECT_EQ(PI_IsLogging(), 0);
               PI_StartAll();
               PI_StopMain(0);
               return 0;
             });
  EXPECT_FALSE(std::filesystem::exists(dir.file("pilot.log")));
}

// --- deadlock detection ------------------------------------------------------

int reader_a(int, void*) {
  int v = 0;
  PI_Read(g_b_to_a, "%d", &v);  // waits for B...
  PI_Write(g_a_to_b, "%d", 1);
  return 0;
}

int reader_b(int, void*) {
  int v = 0;
  PI_Read(g_a_to_b, "%d", &v);  // ...while B waits for A
  PI_Write(g_b_to_a, "%d", 2);
  return 0;
}

TEST(Deadlock, CircularWaitDetected) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* a = PI_CreateProcess(reader_a, 0, nullptr);
        PI_PROCESS* b = PI_CreateProcess(reader_b, 1, nullptr);
        PI_SetName(a, "Alice");
        PI_SetName(b, "Bob");
        g_a_to_b = PI_CreateChannel(a, b);
        g_b_to_a = PI_CreateChannel(b, a);
        PI_StartAll();
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.deadlock);
  EXPECT_EQ(res.abort_code, pilot::kDeadlockAbortCode);
  EXPECT_NE(res.deadlock_report.find("Alice"), std::string::npos)
      << res.deadlock_report;
  EXPECT_NE(res.deadlock_report.find("Bob"), std::string::npos);
  EXPECT_NE(res.deadlock_report.find("pilot_services_test.cpp"), std::string::npos);
}

int orphan_reader(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);  // writer never writes and exits
  return 0;
}

int early_exit_writer(int, void*) { return 0; }

TEST(Deadlock, ReaderStrandedByExitedWriterDetected) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateProcess(early_exit_writer, 0, nullptr);
        PI_PROCESS* reader = PI_CreateProcess(orphan_reader, 1, nullptr);
        g_to_worker = PI_CreateChannel(writer, reader);
        PI_StartAll();
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.deadlock);
}

TEST(Deadlock, HealthyProgramNotFlagged) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=cd", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        // Worker blocks on read for a while before main writes: the
        // detector must see WAIT + matching WRITE and stay quiet.
        int v = 0;
        PI_Write(g_to_worker, "%d", 5);
        PI_Read(g_from_worker, "%d", &v);
        EXPECT_EQ(v, 10);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);
  EXPECT_FALSE(res.deadlock);
}

TEST(Deadlock, MainBlockedOnSilentWorkerDetected) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=d", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(early_exit_writer, 0, nullptr);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);  // worker exits without writing
        ADD_FAILURE() << "read returned despite deadlock";
        PI_StopMain(0);
        return 0;
      });
  EXPECT_TRUE(res.aborted);
  EXPECT_TRUE(res.deadlock);
  EXPECT_NE(res.deadlock_report.find("PI_MAIN"), std::string::npos);
}

}  // namespace

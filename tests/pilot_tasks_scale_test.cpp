// The -piexec=tasks substrate at the Pilot level. Two suites:
//
//   TasksSubstrate — fast cross-substrate checks: a deterministic fan
//     program must leave byte-identical per-rank traces (timestamps
//     masked) under threads and tasks, and a seeded wildcard farm must be
//     run-to-run stable under tasks.
//
//   TasksScale — thousand-rank jobs that are only feasible on the task
//     substrate: a 1000-worker run finishing with a tracecheck-clean
//     merged CLOG-2, same-seed byte-identical reruns, record-once/
//     replay-twice stability, and a rank crash degrading to the named
//     dead-peer abort instead of a hang. Registered with a hard ctest
//     timeout; keep these out of the sanitizer legs.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "analyze/tracecheck.hpp"
#include "clog2/clog2.hpp"
#include "mpisim/world.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "replay/crosscheck.hpp"
#include "util/fs.hpp"

namespace {

std::string fingerprint(const std::filesystem::path& clog2_path) {
  return replay::trace_fingerprint(clog2::read_file(clog2_path));
}

/// No TC-series errors: the merged trace's happens-before order is sound.
void expect_tracecheck_clean(const std::filesystem::path& clog2_path) {
  const analyze::Report rep = analyze::check_trace(clog2::read_file(clog2_path));
  EXPECT_EQ(rep.count(analyze::Severity::kError), 0u) << rep.to_text();
}

// --- deterministic fan workload ----------------------------------------------
// PI_MAIN seeds every worker, each worker replies with a pure function of
// the seed, and PI_MAIN reads the replies back in fixed channel order. No
// wildcard anywhere, so the per-rank event sequence is independent of the
// execution substrate — the basis of the threads-vs-tasks comparison.

std::vector<PI_CHANNEL*> g_fan_down;
std::vector<PI_CHANNEL*> g_fan_up;

int fan_worker(int index, void*) {
  int seed = 0;
  PI_Read(g_fan_down[index], "%d", &seed);
  PI_Write(g_fan_up[index], "%d", seed * 2 + 1);
  return 0;
}

pilot::RunResult run_fan(int workers, std::vector<std::string> extra,
                         int* sum_out = nullptr) {
  std::vector<std::string> args = {"prog", "-piwatchdog=120"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [workers, sum_out](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    g_fan_down.assign(static_cast<std::size_t>(workers), nullptr);
    g_fan_up.assign(static_cast<std::size_t>(workers), nullptr);
    for (int i = 0; i < workers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(fan_worker, i, nullptr);
      g_fan_down[static_cast<std::size_t>(i)] = PI_CreateChannel(PI_MAIN, w);
      g_fan_up[static_cast<std::size_t>(i)] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_StartAll();
    for (int i = 0; i < workers; ++i)
      PI_Write(g_fan_down[static_cast<std::size_t>(i)], "%d", i * 3);
    int sum = 0;
    for (int i = 0; i < workers; ++i) {
      int v = 0;
      PI_Read(g_fan_up[static_cast<std::size_t>(i)], "%d", &v);
      EXPECT_EQ(v, i * 6 + 1);
      sum += v;
    }
    if (sum_out) *sum_out = sum;
    PI_StopMain(0);
    return 0;
  });
}

// --- wildcard select farm ----------------------------------------------------
// Completion order is a scheduler decision, so the trace is only stable when
// the substrate itself is deterministic (seeded tasks) or when replay forces
// the recorded branches.

std::vector<PI_CHANNEL*> g_farm_results;
PI_BUNDLE* g_farm_bundle = nullptr;
constexpr int kFarmTasksPerWorker = 2;

int scale_farm_worker(int index, void*) {
  for (int t = 0; t < kFarmTasksPerWorker; ++t)
    PI_Write(g_farm_results[static_cast<std::size_t>(index)], "%d",
             index * 10 + t);
  return 0;
}

pilot::RunResult run_farm(int workers, std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog", "-piwatchdog=120"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [workers](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    g_farm_results.assign(static_cast<std::size_t>(workers), nullptr);
    for (int i = 0; i < workers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(scale_farm_worker, i, nullptr);
      g_farm_results[static_cast<std::size_t>(i)] = PI_CreateChannel(w, PI_MAIN);
    }
    g_farm_bundle =
        PI_CreateBundle(PI_SELECT_B, g_farm_results.data(), workers);
    PI_StartAll();
    for (int n = 0; n < workers * kFarmTasksPerWorker; ++n) {
      const int ready = PI_Select(g_farm_bundle);
      int v = 0;
      PI_Read(g_farm_results[static_cast<std::size_t>(ready)], "%d", &v);
      EXPECT_EQ(v / 10, ready);
    }
    PI_StopMain(0);
    return 0;
  });
}

// --- TasksSubstrate: fast cross-substrate checks -----------------------------

TEST(TasksSubstrate, FanTraceMatchesThreadsSubstrate) {
  util::TempDir dir;
  const std::string out = "-piout=" + dir.path().string();

  const auto threads =
      run_fan(5, {"-pisvc=j", out, "-piname=threads", "-piexec=threads"});
  ASSERT_FALSE(threads.aborted) << threads.abort_code;
  const auto tasks =
      run_fan(5, {"-pisvc=j", out, "-piname=tasks", "-piexec=tasks"});
  ASSERT_FALSE(tasks.aborted) << tasks.abort_code;

  EXPECT_EQ(threads.exit_codes, tasks.exit_codes);
  // Same per-rank event sequences, timestamps excluded: the substrate only
  // changes *when* ranks run, never *what* they do.
  EXPECT_EQ(fingerprint(dir.file("threads.clog2")),
            fingerprint(dir.file("tasks.clog2")));
  expect_tracecheck_clean(dir.file("tasks.clog2"));
}

TEST(TasksSubstrate, SeededFarmIsRunToRunStableUnderTasks) {
  util::TempDir dir;
  const std::string out = "-piout=" + dir.path().string();

  std::vector<std::string> fps;
  for (const std::string name : {"a", "b"}) {
    const auto res = run_farm(
        5, {"-pisvc=j", out, "-piname=" + name, "-piexec=tasks",
            "-pisim-seed=42"});
    ASSERT_FALSE(res.aborted) << res.abort_code;
    fps.push_back(fingerprint(dir.file(name + ".clog2")));
  }
  EXPECT_EQ(fps[0], fps[1]);
}

// --- TasksScale: thousand-rank jobs ------------------------------------------

constexpr int kScaleWorkers = 1000;

TEST(TasksScale, ThousandRanksProduceValidMergedTrace) {
  util::TempDir dir;
  const std::string out = "-piout=" + dir.path().string();

  int sum = 0;
  const auto res = run_fan(
      kScaleWorkers, {"-pisvc=j", out, "-piname=big", "-piexec=tasks"}, &sum);
  ASSERT_FALSE(res.aborted) << res.abort_code;
  ASSERT_EQ(res.status, 0);
  // sum of (6i + 1) for i in [0, 1000)
  EXPECT_EQ(sum, 6 * (kScaleWorkers * (kScaleWorkers - 1) / 2) + kScaleWorkers);

  const auto clog = dir.file("big.clog2");
  ASSERT_TRUE(std::filesystem::exists(clog));
  const clog2::File f = clog2::read_file(clog);
  EXPECT_EQ(f.nranks, kScaleWorkers + 1);
  EXPECT_GT(f.count<clog2::MsgRec>(), 0u);
  expect_tracecheck_clean(clog);
}

TEST(TasksScale, ThousandRankSeededRunsAreByteIdentical) {
  util::TempDir dir;
  const std::string out = "-piout=" + dir.path().string();

  std::vector<std::string> fps;
  for (const std::string name : {"s1", "s2"}) {
    const auto res = run_farm(
        kScaleWorkers, {"-pisvc=j", out, "-piname=" + name, "-piexec=tasks",
                        "-pisim-seed=7"});
    ASSERT_FALSE(res.aborted) << res.abort_code;
    fps.push_back(fingerprint(dir.file(name + ".clog2")));
  }
  EXPECT_EQ(fps[0], fps[1]);
}

TEST(TasksScale, ThousandRankRecordReplayIsStable) {
  util::TempDir dir;
  const std::string prl = dir.file("big.prl").string();
  const std::string out = "-piout=" + dir.path().string();

  const auto rec = run_farm(
      kScaleWorkers,
      {"-pisvc=j", out, "-piname=rec", "-piexec=tasks", "-pirecord=" + prl});
  ASSERT_FALSE(rec.aborted) << rec.abort_code;

  std::vector<std::string> fps;
  for (const std::string name : {"rep1", "rep2"}) {
    const auto rep = run_farm(
        kScaleWorkers, {"-pisvc=j", out, "-piname=" + name, "-piexec=tasks",
                        "-pireplay=" + prl});
    ASSERT_FALSE(rep.aborted) << rep.abort_code;
    EXPECT_FALSE(rep.replay_diverged) << rep.replay.to_text();
    fps.push_back(fingerprint(dir.file(name + ".clog2")));
  }
  EXPECT_EQ(fps[0], fps[1]);
  EXPECT_EQ(fps[0], fingerprint(dir.file("rec.clog2")));
}

TEST(TasksScale, ThousandRankCrashDegradesGracefully) {
  // Kill one mid-field worker before it replies: PI_MAIN can never finish
  // its fixed-order read loop, so the run must end as the named dead-peer
  // abort (surfaced by the stall detector — there is no per-rank grace
  // timer on the task substrate), never as a watchdog timeout.
  const auto res = run_fan(
      kScaleWorkers, {"-piexec=tasks", "-pifault=crash=500@call:2"});
  EXPECT_TRUE(res.aborted);
  EXPECT_EQ(res.abort_code, mpisim::World::kPeerDeadAbortCode);
  EXPECT_NE(res.abort_code, mpisim::World::kWatchdogAbortCode);
  ASSERT_EQ(res.crashed_ranks.size(), 1u);
  EXPECT_EQ(res.crashed_ranks[0], 500);
  EXPECT_TRUE(res.fault.has("FJ10")) << res.fault.to_text();
  EXPECT_TRUE(res.fault.has("FJ11")) << res.fault.to_text();
}

}  // namespace

// Custom user states (PI_DefineState / PI_StateBegin / PI_StateEnd) —
// MPE's "customized logging" surfaced through Pilot.
#include <gtest/gtest.h>

#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "slog2/slog2.hpp"
#include "util/fs.hpp"

namespace {

PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;
int g_phase1 = -1;
int g_phase2 = -1;

int annotated_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);

  PI_StateBegin(g_phase1);
  PI_Compute(0.0);  // "preprocessing"
  PI_StateEnd(g_phase1);

  PI_StateBegin(g_phase2);
  PI_StateBegin(g_phase1);  // nested annotation
  PI_StateEnd(g_phase1);
  PI_StateEnd(g_phase2);

  PI_Write(g_from_worker, "%d", v);
  return 0;
}

TEST(UserStates, AppearInTheVisualLogWithNesting) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=j", "-piout=" + dir.path().string(), "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        g_phase1 = PI_DefineState("Preprocess", "SkyBlue");
        g_phase2 = PI_DefineState("Solve", "Orchid");
        PI_PROCESS* w = PI_CreateProcess(annotated_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);
        PI_StopMain(0);
        return 0;
      });
  EXPECT_FALSE(res.aborted);

  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  EXPECT_TRUE(slog.stats.clean()) << slog2::to_text(slog);

  std::size_t preprocess = 0, solve = 0;
  int nested_preprocess_depth = -1;
  slog.visit_window(
      slog.t_min, slog.t_max,
      [&](const slog2::StateDrawable& s) {
        const auto* cat = slog.category(s.category_id);
        if (!cat) return;
        if (cat->name == "Preprocess") {
          ++preprocess;
          nested_preprocess_depth = std::max(nested_preprocess_depth, s.depth);
          EXPECT_EQ(cat->color, "SkyBlue");
        }
        if (cat->name == "Solve") ++solve;
      },
      nullptr, nullptr);
  EXPECT_EQ(preprocess, 2u);
  EXPECT_EQ(solve, 1u);
  // Second Preprocess sits inside Solve inside Compute: depth 2.
  EXPECT_EQ(nested_preprocess_depth, 2);
}

TEST(UserStates, DefineRequiresConfigPhase) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_StartAll();
                            PI_DefineState("late", "red");
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(UserStates, UnknownColorRejected) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_DefineState("x", "not-a-colour");
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(UserStates, InvalidHandleRejected) {
  EXPECT_THROW(pilot::run({"prog", "-piwatchdog=20"},
                          [](int argc, char** argv) {
                            PI_Configure(&argc, &argv);
                            PI_StartAll();
                            PI_StateBegin(7);
                            PI_StopMain(0);
                            return 0;
                          }),
               pilot::PilotError);
}

TEST(UserStates, NoOpWithoutJumpshotLogging) {
  // Instrumented programs must run unchanged when logging is off.
  const auto res = pilot::run({"prog", "-piwatchdog=20"}, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    const int h = PI_DefineState("Phase", "teal");
    PI_StartAll();
    PI_StateBegin(h);
    PI_StateEnd(h);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(res.aborted);
}

}  // namespace

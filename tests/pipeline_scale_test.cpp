// Determinism guarantees of the scale-out pipeline: the parallel converter
// must emit byte-identical .slog2 at any thread count, and the k-way heap
// merge must reproduce the seed's concat+stable_sort order exactly —
// including on a million-event pilot-tracegen trace (suite PipelineLarge,
// kept out of the sanitizer legs by name).
#include <gtest/gtest.h>

#include <vector>

#include "mpe/mpe.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"
#include "util/error.hpp"

#ifndef PILOT_FIXTURE_DIR
#error "PILOT_FIXTURE_DIR must be defined by the build"
#endif

namespace {

std::vector<std::uint8_t> convert_bytes(const clog2::File& trace, int threads,
                                        std::uint64_t frame_size = 64 * 1024) {
  slog2::ConvertOptions opts;
  opts.threads = threads;
  opts.frame_size = frame_size;
  return slog2::serialize(slog2::convert(trace, opts));
}

void expect_thread_invariant(const clog2::File& trace,
                             std::uint64_t frame_size = 64 * 1024) {
  const auto t1 = convert_bytes(trace, 1, frame_size);
  EXPECT_EQ(t1, convert_bytes(trace, 2, frame_size));
  EXPECT_EQ(t1, convert_bytes(trace, 8, frame_size));
}

clog2::File fixture_trace() {
  return clog2::read_file(std::string(PILOT_FIXTURE_DIR) + "/tiny.clog2");
}

/// The seed's merge: concatenate per-rank streams and stable_sort by time.
std::vector<clog2::Record> sort_path(
    std::vector<std::vector<clog2::Record>> streams) {
  std::vector<clog2::Record> out;
  for (auto& s : streams)
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  std::stable_sort(out.begin(), out.end(),
                   [](const clog2::Record& a, const clog2::Record& b) {
                     return mpe::record_time(a) < mpe::record_time(b);
                   });
  return out;
}

std::vector<std::vector<clog2::Record>> split_by_rank(const clog2::File& f) {
  std::vector<std::vector<clog2::Record>> streams(
      static_cast<std::size_t>(f.nranks));
  for (const auto& rec : f.records) {
    int rank = -1;
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) rank = e->rank;
    if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) rank = m->rank;
    if (rank >= 0) streams[static_cast<std::size_t>(rank)].push_back(rec);
  }
  return streams;
}

std::vector<std::uint8_t> records_bytes(std::vector<clog2::Record> records,
                                        std::int32_t nranks) {
  clog2::File f;
  f.nranks = nranks;
  f.records = std::move(records);
  return clog2::serialize(f);
}

TEST(PipelineScale, FixtureThreadsByteIdentical) {
  expect_thread_invariant(fixture_trace());
  // A small frame size stresses the tree layout under partitioning too.
  expect_thread_invariant(fixture_trace(), 256);
}

TEST(PipelineScale, TracegenThreadsByteIdentical) {
  tracegen::Options opts;
  opts.seed = 11;
  opts.nranks = 6;
  opts.events = 100000;  // the generator's floor
  expect_thread_invariant(tracegen::generate(opts));
}

TEST(PipelineScale, TracegenDeterministicAcrossCalls) {
  tracegen::Options opts;
  opts.seed = 5;
  const auto a = tracegen::generate(opts);
  const auto b = tracegen::generate(opts);
  EXPECT_EQ(clog2::serialize(a), clog2::serialize(b));

  opts.seed = 6;
  EXPECT_NE(clog2::serialize(a), clog2::serialize(tracegen::generate(opts)));
}

TEST(PipelineScale, TracegenRejectsOutOfRangeRanks) {
  tracegen::Options opts;
  opts.nranks = 0;
  EXPECT_THROW(tracegen::generate(opts), util::UsageError);
  opts.nranks = tracegen::kMaxRanks + 1;
  EXPECT_THROW(tracegen::generate(opts), util::UsageError);
  // The cap itself is usable — a tiny event budget keeps this instant.
  opts.nranks = tracegen::kMaxRanks;
  opts.events = 10;
  EXPECT_EQ(tracegen::generate(opts).nranks, tracegen::kMaxRanks);
}

TEST(PipelineScale, TracegenOutputIsTimeOrderedAndClean) {
  tracegen::Options opts;
  opts.seed = 3;
  opts.nranks = 4;
  const auto trace = tracegen::generate(opts);
  ASSERT_EQ(trace.nranks, 4);
  double last = 0;
  for (const auto& rec : trace.records) {
    const double t = mpe::record_time(rec);
    EXPECT_GE(t, last);
    last = t;
  }
  // Every send is received, every state closed: conversion is warning-free.
  std::vector<std::string> warnings;
  const auto slog = slog2::convert(trace, {}, &warnings);
  EXPECT_TRUE(slog.stats.clean());
  EXPECT_TRUE(warnings.empty()) << warnings.front();
}

TEST(PipelineScale, KwayMergeMatchesSortPathOnFixture) {
  const auto trace = fixture_trace();
  auto streams = split_by_rank(trace);
  const auto expected = records_bytes(sort_path(streams), trace.nranks);
  EXPECT_EQ(records_bytes(mpe::merge_timed(std::move(streams)), trace.nranks),
            expected);
}

TEST(PipelineScale, KwayMergeMatchesSortPathOnTracegen) {
  tracegen::Options opts;
  opts.seed = 21;
  opts.nranks = 8;
  const auto trace = tracegen::generate(opts);
  auto streams = split_by_rank(trace);
  const auto expected = records_bytes(sort_path(streams), trace.nranks);
  EXPECT_EQ(records_bytes(mpe::merge_timed(std::move(streams)), trace.nranks),
            expected);
}

TEST(PipelineScale, KwayMergeRepairsLocalInversion) {
  // A stream with an out-of-order record (as a degenerate clock fit can
  // produce) must still come out globally sorted.
  std::vector<std::vector<clog2::Record>> streams(2);
  streams[0] = {clog2::EventRec{1.0, 0, 7, ""}, clog2::EventRec{0.5, 0, 7, ""},
                clog2::EventRec{2.0, 0, 7, ""}};
  streams[1] = {clog2::EventRec{0.7, 1, 7, ""}, clog2::EventRec{1.5, 1, 7, ""}};
  const auto merged = mpe::merge_timed(std::move(streams));
  ASSERT_EQ(merged.size(), 5u);
  double last = 0;
  for (const auto& rec : merged) {
    EXPECT_GE(mpe::record_time(rec), last);
    last = mpe::record_time(rec);
  }
}

// The headline acceptance check: a 10^6-event synthetic trace converts
// byte-identically at 1, 2, and 8 threads. Heavy (three full conversions),
// so it lives in its own suite with a ctest TIMEOUT and is excluded from
// the sanitizer legs.
TEST(PipelineLarge, MillionEventThreadsByteIdentical) {
  tracegen::Options opts;
  opts.seed = 1;
  opts.nranks = 8;
  opts.events = 1000000;
  const auto trace = tracegen::generate(opts);
  EXPECT_GE(trace.records.size(), 1000000u);
  expect_thread_invariant(trace);
}

}  // namespace

// Unit tests for the src/query/ trace-analysis core: the typed Trace view,
// the filter/group/aggregate combinators, the shared message-matching and
// vector-clock engine, and the per-rank rollups the differ and the checker
// are built on.
#include <gtest/gtest.h>

#include <vector>

#include "clog2/clog2.hpp"
#include "query/clocks.hpp"
#include "query/combinators.hpp"
#include "query/rollup.hpp"
#include "query/slog2_rollup.hpp"
#include "query/trace.hpp"

namespace {

using Kind = clog2::MsgRec::Kind;

/// A 3-rank toy program: one Compute state per rank, a ping 0->1 answered
/// 1->0, one unreceived send 0->2, one sync record (excluded from spans).
clog2::File toy_trace() {
  clog2::File f;
  f.nranks = 3;
  f.records = {
      clog2::EventDef{10, "Round", "yellow", "i%d"},
      clog2::EventDef{20, "Wait", "orange", "%s"},
      clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
      clog2::SyncRec{0, 0.0, 0.0},
      clog2::SyncRec{1, 0.001, 0.0},
      clog2::EventRec{0.010, 0, 11, ""},
      clog2::EventRec{0.011, 1, 11, ""},
      clog2::MsgRec{0.020, 0, Kind::kSend, 1, 3, 8},
      clog2::MsgRec{0.022, 1, Kind::kRecv, 0, 3, 8},
      clog2::MsgRec{0.030, 1, Kind::kSend, 0, 4, 16},
      clog2::MsgRec{0.034, 0, Kind::kRecv, 1, 4, 16},
      clog2::MsgRec{0.040, 0, Kind::kSend, 2, 9, 4},  // never received
      clog2::EventRec{0.050, 0, 12, ""},
      clog2::EventRec{0.052, 1, 12, ""},
      clog2::EventRec{0.060, 2, 10, "i7"},
  };
  return f;
}

TEST(QueryTrace, IndexesStepsDefinitionsAndSpan) {
  const clog2::File f = toy_trace();
  const query::Trace t(f);

  EXPECT_EQ(t.nranks(), 3);
  // 2 syncs + 5 events + 5 message halves.
  EXPECT_EQ(t.steps().size(), 12u);
  ASSERT_EQ(t.by_rank().size(), 3u);
  EXPECT_EQ(t.by_rank()[0].size(), 6u);  // sync + 2 events + 3 msg halves
  EXPECT_EQ(t.by_rank()[2].size(), 1u);

  // The span covers events and messages but never syncs.
  EXPECT_TRUE(t.has_span());
  EXPECT_DOUBLE_EQ(t.t_min(), 0.010);
  EXPECT_DOUBLE_EQ(t.t_max(), 0.060);

  const query::StateEvent* start = t.state_event(11);
  ASSERT_NE(start, nullptr);
  EXPECT_TRUE(start->is_start);
  EXPECT_EQ(start->name, "Compute");
  const query::StateEvent* end = t.state_event(12);
  ASSERT_NE(end, nullptr);
  EXPECT_FALSE(end->is_start);
  EXPECT_EQ(t.state_event(10), nullptr);  // solo event, not a state edge

  ASSERT_TRUE(t.event_id_of("Wait").has_value());
  EXPECT_EQ(*t.event_id_of("Wait"), 20);
  EXPECT_FALSE(t.event_id_of("Nope").has_value());
}

TEST(QueryTrace, EventIdLookupIsLastWins) {
  clog2::File f;
  f.nranks = 1;
  f.records = {clog2::EventDef{20, "Wait", "orange", "%s"},
               clog2::EventDef{21, "Wait", "orange", "%s"}};
  const query::Trace t(f);
  EXPECT_EQ(*t.event_id_of("Wait"), 21);
}

TEST(QueryCombinators, FilterWindowGroupAndAggregate) {
  const clog2::File f = toy_trace();
  const query::Trace t(f);

  const query::Selection all = query::Selection::all(t);
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(all.messages().size(), 5u);
  EXPECT_EQ(all.kind(query::StepKind::kSend).size(), 3u);
  EXPECT_EQ(query::Selection::rank(t, 2).size(), 1u);

  // Window is inclusive and swaps reversed bounds.
  EXPECT_EQ(all.window(0.020, 0.034).size(), 4u);
  EXPECT_EQ(all.window(0.034, 0.020).size(), 4u);

  const auto by_rank = all.messages().group_by(
      [](const query::Step& s) { return static_cast<int>(s.rank); });
  ASSERT_EQ(by_rank.size(), 2u);  // rank 2 has no message halves
  EXPECT_EQ(by_rank.at(0).size(), 3u);
  EXPECT_EQ(by_rank.at(1).size(), 2u);

  const std::uint64_t bytes = all.kind(query::StepKind::kSend)
                                  .aggregate(std::uint64_t{0},
                                             [](std::uint64_t acc,
                                                const query::Step& s) {
                                               return acc + s.size;
                                             });
  EXPECT_EQ(bytes, 28u);
  EXPECT_EQ(all.count_if([](const query::Step& s) {
              return s.kind == query::StepKind::kSync;
            }),
            2u);
}

TEST(QueryClocks, MatchingAndVectorClockOrder) {
  const clog2::File f = toy_trace();
  query::MsgGraph g = query::match_messages(f);

  EXPECT_EQ(g.nranks, 3);
  ASSERT_EQ(g.msgs.size(), 3u);  // two matched pairs + one in-flight send
  std::size_t matched = 0;
  for (const auto& m : g.msgs) matched += m.matched ? 1u : 0u;
  EXPECT_EQ(matched, 2u);
  ASSERT_EQ(g.unreceived.size(), 3u);  // all keys ever seen stay present
  EXPECT_EQ(g.unreceived.at({0, 2, 9}).size(), 1u);
  EXPECT_TRUE(g.unreceived.at({0, 1, 3}).empty());
  EXPECT_TRUE(g.unmatched_recvs.empty());

  EXPECT_FALSE(query::stamp_clocks(g));  // no causal cycle
  for (const auto& m : g.msgs) {
    if (!m.matched) continue;
    EXPECT_TRUE(m.stamped);
    // A send happens-before its own receive, never the other way.
    EXPECT_TRUE(query::clock_leq(m.send_stamp, m.recv_stamp));
    EXPECT_FALSE(query::clock_leq(m.recv_stamp, m.send_stamp));
  }
  // The ping and the reply are causally ordered, not concurrent.
  EXPECT_FALSE(query::clock_concurrent(g.msgs[0].send_stamp,
                                       g.msgs[1].send_stamp));
}

TEST(QueryClocks, UnmatchedReceiveIsCounted) {
  clog2::File f;
  f.nranks = 2;
  f.records = {clog2::MsgRec{0.010, 1, Kind::kRecv, 0, 5, 8}};
  const query::MsgGraph g = query::match_messages(f);
  EXPECT_TRUE(g.msgs.empty());
  ASSERT_EQ(g.unmatched_recvs.size(), 1u);
  EXPECT_EQ(g.unmatched_recvs.at({0, 1, 5}), 1u);
}

TEST(QueryRollup, StateDurationsWithHistogram) {
  const clog2::File f = toy_trace();
  const query::Trace t(f);
  const query::StateDurations d = query::state_durations(t);

  const query::StateStats* r0 = d.find(0, 1);
  ASSERT_NE(r0, nullptr);
  EXPECT_EQ(r0->count, 1u);
  EXPECT_DOUBLE_EQ(r0->total_seconds, 0.040);
  EXPECT_EQ(r0->histogram[query::duration_bucket(0.040)], 1u);
  EXPECT_DOUBLE_EQ(d.rank_total(1), 0.041);
  EXPECT_EQ(d.find(2, 1), nullptr);  // rank 2 never entered Compute
}

TEST(QueryRollup, DurationBucketsAreLogScale) {
  EXPECT_EQ(query::duration_bucket(0.0), 0u);          // < 1us
  EXPECT_EQ(query::duration_bucket(5e-7), 0u);         // < 1us
  EXPECT_EQ(query::duration_bucket(5e-6), 1u);         // 1us..10us
  EXPECT_EQ(query::duration_bucket(0.005), 4u);        // 1ms..10ms
  EXPECT_EQ(query::duration_bucket(100.0), 7u);        // clamped at >= 10s
}

TEST(QueryRollup, MessageEdges) {
  const clog2::File f = toy_trace();
  const query::MessageEdges e = query::message_edges(query::match_messages(f));

  ASSERT_EQ(e.edges.size(), 3u);
  const query::EdgeStats& ping = e.edges.at({0, 1, 3});
  EXPECT_EQ(ping.sent, 1u);
  EXPECT_EQ(ping.matched, 1u);
  EXPECT_EQ(ping.bytes, 8u);
  EXPECT_NEAR(ping.mean_latency(), 0.002, 1e-12);
  const query::EdgeStats& lost = e.edges.at({0, 2, 9});
  EXPECT_EQ(lost.sent, 1u);
  EXPECT_EQ(lost.matched, 0u);
  EXPECT_DOUBLE_EQ(lost.mean_latency(), 0.0);
}

TEST(QueryRollup, MergeIntervals) {
  const auto merged = query::merge_intervals(
      {{0.5, 0.9}, {0.1, 0.3}, {0.2, 0.6}, {0.9, 1.0}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.front().begin, 0.1);
  EXPECT_DOUBLE_EQ(merged.front().end, 1.0);

  const auto disjoint = query::merge_intervals({{2.0, 3.0}, {0.0, 1.0}});
  ASSERT_EQ(disjoint.size(), 2u);
  EXPECT_DOUBLE_EQ(disjoint[0].end, 1.0);
  EXPECT_DOUBLE_EQ(disjoint[1].begin, 2.0);
}

TEST(QuerySlog2Rollup, LegendSweepNestingAndWindowOccupancy) {
  // Rank 0: an outer state (cat 1) [0,1] with a nested state (cat 2)
  // [0.25,0.5]; one event of cat 3; one arrow 0->1.
  query::LegendSweep sweep;
  sweep.add_state({1, 0, 0.0, 1.0, 0, "", ""});
  sweep.add_state({2, 0, 0.25, 0.5, 1, "", ""});
  sweep.add_event({3, 0, 0.6, ""});
  sweep.add_arrow({0, 1, 0.3, 0.4, 7, 8});
  const auto totals = sweep.totals();

  ASSERT_TRUE(totals.contains(1));
  EXPECT_EQ(totals.at(1).count, 1u);
  EXPECT_DOUBLE_EQ(totals.at(1).inclusive, 1.0);
  EXPECT_DOUBLE_EQ(totals.at(1).exclusive, 0.75);  // minus the nested 0.25
  EXPECT_DOUBLE_EQ(totals.at(2).exclusive, 0.25);
  EXPECT_EQ(totals.at(3).count, 1u);
  EXPECT_EQ(totals.at(slog2::kArrowCategoryId).count, 1u);

  query::WindowOccupancy occ(2, 0.4, 0.8);
  occ.add_state({1, 0, 0.0, 1.0, 0, "", ""});
  occ.add_state({2, 0, 0.25, 0.5, 1, "", ""});
  occ.add_event({3, 0, 0.6, ""});
  occ.add_arrow({0, 1, 0.3, 0.4, 7, 8});
  ASSERT_EQ(occ.ranks().size(), 2u);
  const auto& r0 = occ.ranks()[0];
  EXPECT_DOUBLE_EQ(r0.state_time.at(1), 0.4);   // clipped to [0.4, 0.8]
  EXPECT_DOUBLE_EQ(r0.state_time.at(2), 0.1);   // clipped to [0.4, 0.5]
  EXPECT_EQ(r0.event_count.at(3), 1u);
  EXPECT_EQ(r0.arrows_out, 1u);
  EXPECT_EQ(occ.ranks()[1].arrows_in, 1u);
}

}  // namespace

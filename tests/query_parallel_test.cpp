// Determinism property suite for the parallel query engine: every sharded
// path — Trace construction, the per-rank rollups, the Selection
// combinators, the legend/occupancy window sweeps, and the vector-clock
// stamping — must produce output *identical* to the serial path at any
// worker count. Doubles are compared with EXPECT_EQ (exact bits), because
// the parallel implementations promise to replay the serial accumulation
// order, not merely to be "close".
//
// The fast 'QueryParallel' and 'FrameCacheConcurrency' suites run under the
// sanitizers (they carry the TSan coverage for the shared decode cache and
// the parallel sweeps); the million-event 'QueryParallelScale' suite is
// heavy — keep 'Scale' out of the sanitizer ctest regexes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "query/clocks.hpp"
#include "query/combinators.hpp"
#include "query/parallel_sweep.hpp"
#include "query/rollup.hpp"
#include "query/slog2_rollup.hpp"
#include "query/trace.hpp"
#include "slog2/frame_cache.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"

namespace {

clog2::File gen_trace(std::uint64_t events, std::int32_t nranks = 8,
                      std::uint64_t seed = 7) {
  tracegen::Options o;
  o.seed = seed;
  o.nranks = nranks;
  o.events = events;
  o.arrow_fraction = 0.3;  // plenty of messages for the clock/edge paths
  return tracegen::generate(o);
}

void expect_traces_identical(const query::Trace& a, const query::Trace& b) {
  EXPECT_EQ(a.nranks(), b.nranks());
  ASSERT_EQ(a.steps().size(), b.steps().size());
  for (std::size_t i = 0; i < a.steps().size(); ++i) {
    const query::Step& x = a.steps()[i];
    const query::Step& y = b.steps()[i];
    ASSERT_EQ(x.time, y.time) << "step " << i;
    ASSERT_EQ(x.rank, y.rank) << "step " << i;
    ASSERT_EQ(x.kind, y.kind) << "step " << i;
    ASSERT_EQ(x.event_id, y.event_id) << "step " << i;
    ASSERT_EQ(x.text, y.text) << "step " << i;  // same pointer into the file
    ASSERT_EQ(x.partner, y.partner) << "step " << i;
    ASSERT_EQ(x.tag, y.tag) << "step " << i;
    ASSERT_EQ(x.size, y.size) << "step " << i;
  }
  EXPECT_EQ(a.by_rank(), b.by_rank());
  EXPECT_EQ(a.state_names(), b.state_names());
  ASSERT_EQ(a.state_events().size(), b.state_events().size());
  for (const auto& [id, ev] : a.state_events()) {
    const query::StateEvent* other = b.state_event(id);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(ev.state_id, other->state_id);
    EXPECT_EQ(ev.name, other->name);
    EXPECT_EQ(ev.is_start, other->is_start);
  }
  EXPECT_EQ(a.has_span(), b.has_span());
  EXPECT_EQ(a.t_min(), b.t_min());
  EXPECT_EQ(a.t_max(), b.t_max());
}

void expect_durations_identical(const query::StateDurations& a,
                                const query::StateDurations& b) {
  ASSERT_EQ(a.by_rank_state.size(), b.by_rank_state.size());
  auto ia = a.by_rank_state.begin();
  auto ib = b.by_rank_state.begin();
  for (; ia != a.by_rank_state.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.count, ib->second.count);
    EXPECT_EQ(ia->second.total_seconds, ib->second.total_seconds);
    EXPECT_EQ(ia->second.histogram, ib->second.histogram);
  }
}

void expect_edges_identical(const query::MessageEdges& a,
                            const query::MessageEdges& b) {
  ASSERT_EQ(a.edges.size(), b.edges.size());
  auto ia = a.edges.begin();
  auto ib = b.edges.begin();
  for (; ia != a.edges.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.sent, ib->second.sent);
    EXPECT_EQ(ia->second.matched, ib->second.matched);
    EXPECT_EQ(ia->second.bytes, ib->second.bytes);
    EXPECT_EQ(ia->second.total_latency, ib->second.total_latency);
  }
}

void expect_totals_identical(
    const std::map<std::int32_t, query::LegendTotals>& a,
    const std::map<std::int32_t, query::LegendTotals>& b) {
  ASSERT_EQ(a.size(), b.size());
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    ASSERT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.count, ib->second.count) << "cat " << ia->first;
    EXPECT_EQ(ia->second.inclusive, ib->second.inclusive) << "cat " << ia->first;
    EXPECT_EQ(ia->second.exclusive, ib->second.exclusive) << "cat " << ia->first;
  }
}

void expect_occupancy_identical(const query::WindowOccupancy& a,
                                const query::WindowOccupancy& b) {
  ASSERT_EQ(a.ranks().size(), b.ranks().size());
  for (std::size_t r = 0; r < a.ranks().size(); ++r) {
    const auto& x = a.ranks()[r];
    const auto& y = b.ranks()[r];
    EXPECT_EQ(x.state_time, y.state_time) << "rank " << r;
    EXPECT_EQ(x.state_count, y.state_count) << "rank " << r;
    EXPECT_EQ(x.event_count, y.event_count) << "rank " << r;
    EXPECT_EQ(x.arrows_out, y.arrows_out) << "rank " << r;
    EXPECT_EQ(x.arrows_in, y.arrows_in) << "rank " << r;
  }
}

// Enough records that every parallel gate (2 * 64Ki-step chunks, the
// 64Ki-state legend floor, the 10k-op clock floor) is actually crossed —
// these tests must exercise the sharded code, not its serial fallback.
constexpr std::uint64_t kFastEvents = 200000;

TEST(QueryParallel, TraceBuildIdenticalAcrossThreadCounts) {
  const clog2::File f = gen_trace(kFastEvents);
  const query::Trace serial(f);
  ASSERT_GE(serial.steps().size(), std::size_t{1} << 17)
      << "fixture too small to cross the parallel gate";
  for (int threads : {2, 8}) {
    const query::Trace par(f, threads);
    expect_traces_identical(serial, par);
  }
}

TEST(QueryParallel, RollupsIdenticalAcrossThreadCounts) {
  const clog2::File f = gen_trace(kFastEvents);
  const query::Trace t(f);
  const query::StateDurations sd = query::state_durations(t);
  query::MsgGraph g = query::match_messages(f);
  const query::MessageEdges me = query::message_edges(g);
  for (int threads : {2, 8}) {
    expect_durations_identical(sd, query::state_durations(t, threads));
    expect_edges_identical(me, query::message_edges(g, threads));
  }
}

TEST(QueryParallel, StampClocksIdenticalToSerial) {
  const clog2::File f = gen_trace(kFastEvents);
  query::MsgGraph serial_g = query::match_messages(f);
  const bool serial_ok = query::stamp_clocks(serial_g);
  for (int threads : {2, 8}) {
    query::MsgGraph par_g = query::match_messages(f);
    EXPECT_EQ(query::stamp_clocks(par_g, threads), serial_ok);
    ASSERT_EQ(par_g.msgs.size(), serial_g.msgs.size());
    for (std::size_t i = 0; i < serial_g.msgs.size(); ++i) {
      ASSERT_EQ(par_g.msgs[i].stamped, serial_g.msgs[i].stamped) << "msg " << i;
      ASSERT_EQ(par_g.msgs[i].send_stamp, serial_g.msgs[i].send_stamp)
          << "msg " << i;
      ASSERT_EQ(par_g.msgs[i].recv_stamp, serial_g.msgs[i].recv_stamp)
          << "msg " << i;
    }
  }
}

TEST(QueryParallel, SelectionCombinatorsIdenticalAcrossThreadCounts) {
  const clog2::File f = gen_trace(kFastEvents);
  const query::Trace t(f);
  const query::Selection all = query::Selection::all(t);
  const double mid = (t.t_min() + t.t_max()) / 2.0;

  const auto is_even_rank = [](const query::Step& s) { return s.rank % 2 == 0; };
  const query::Selection filt = all.filter(is_even_rank);
  const query::Selection win = all.window(t.t_min(), mid);
  const query::Selection sends = all.kind(query::StepKind::kSend);
  const query::Selection msgs = all.messages();
  const auto grouped =
      all.group_by([](const query::Step& s) { return static_cast<int>(s.rank); });
  const std::uint64_t bytes = sends.aggregate(
      std::uint64_t{0},
      [](std::uint64_t acc, const query::Step& s) { return acc + s.size; });
  const std::size_t nsync = all.count_if(
      [](const query::Step& s) { return s.kind == query::StepKind::kSync; });

  for (int threads : {2, 8}) {
    EXPECT_EQ(all.filter(is_even_rank, threads).indices(), filt.indices());
    EXPECT_EQ(all.window(t.t_min(), mid, threads).indices(), win.indices());
    EXPECT_EQ(all.kind(query::StepKind::kSend, threads).indices(),
              sends.indices());
    EXPECT_EQ(all.messages(threads).indices(), msgs.indices());

    const auto grouped_p = all.group_by(
        [](const query::Step& s) { return static_cast<int>(s.rank); }, threads);
    ASSERT_EQ(grouped_p.size(), grouped.size());
    for (const auto& [key, sel] : grouped)
      EXPECT_EQ(grouped_p.at(key).indices(), sel.indices()) << "rank " << key;

    EXPECT_EQ(sends.aggregate(
                  std::uint64_t{0},
                  [](std::uint64_t acc, const query::Step& s) {
                    return acc + s.size;
                  },
                  [](std::uint64_t a, std::uint64_t b) { return a + b; },
                  threads),
              bytes);
    EXPECT_EQ(all.count_if(
                  [](const query::Step& s) {
                    return s.kind == query::StepKind::kSync;
                  },
                  threads),
              nsync);
  }
}

TEST(QueryParallel, LegendTotalsIdenticalAcrossThreadCounts) {
  const clog2::File f = gen_trace(kFastEvents);
  slog2::ConvertOptions co;
  const slog2::File s = slog2::convert(f, co);

  query::LegendSweep sweep;
  s.visit_window(
      s.t_min, s.t_max,
      [&](const slog2::StateDrawable& st) { sweep.add_state(st); },
      [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
      [&](const slog2::ArrowDrawable& a) { sweep.add_arrow(a); });

  const auto serial = sweep.totals();
  for (int threads : {2, 8})
    expect_totals_identical(serial, sweep.totals(threads));
}

TEST(QueryParallel, WindowSweepsIdenticalAcrossThreadCounts) {
  const clog2::File f = gen_trace(kFastEvents);
  slog2::ConvertOptions co;
  co.frame_size = 16 * 1024;  // many frames, so the per-frame shards matter
  const std::vector<std::uint8_t> bytes = slog2::serialize(slog2::convert(f, co));

  slog2::Navigator nav(bytes);
  const double a = nav.t_min();
  const double b = (nav.t_min() + nav.t_max()) / 2.0;

  // Serial reference: the plain Navigator visit feeding one sweep.
  query::LegendSweep ref_sweep;
  query::WindowOccupancy ref_occ(nav.nranks(), a, b);
  nav.visit_window(
      a, b,
      [&](const slog2::StateDrawable& st) {
        ref_sweep.add_state(st);
        ref_occ.add_state(st);
      },
      [&](const slog2::EventDrawable& e) {
        ref_sweep.add_event(e);
        ref_occ.add_event(e);
      },
      [&](const slog2::ArrowDrawable& ar) {
        ref_sweep.add_arrow(ar);
        ref_occ.add_arrow(ar);
      });
  const auto ref_totals = ref_sweep.totals();

  for (int threads : {1, 2, 8}) {
    query::LegendSweep par = query::legend_window(nav, a, b, threads);
    expect_totals_identical(ref_totals, par.totals());
    const query::WindowOccupancy occ =
        query::occupancy_window(nav, nav.nranks(), a, b, threads);
    expect_occupancy_identical(ref_occ, occ);
  }
}

// --- the shared decode cache -------------------------------------------------

TEST(FrameCacheConcurrency, ConcurrentSessionsShareOneFile) {
  const clog2::File f = gen_trace(60000, 4, 11);
  slog2::ConvertOptions co;
  co.frame_size = 8 * 1024;
  const std::vector<std::uint8_t> bytes = slog2::serialize(slog2::convert(f, co));

  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "frame_cache_shared.slog2";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  slog2::FrameCache::global().clear();
  const auto before = slog2::FrameCache::global().stats();

  // N sessions over the same on-disk file: same owner id, so the decode work
  // is shared. Every session must see the same totals.
  constexpr int kSessions = 8;
  std::vector<std::uint64_t> state_counts(kSessions, 0);
  std::atomic<int> failures{0};
  {
    std::vector<std::thread> pool;
    pool.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      pool.emplace_back([&, s] {
        try {
          slog2::Navigator nav(path);
          std::uint64_t states = 0;
          nav.visit_window(
              nav.t_min(), nav.t_max(),
              [&](const slog2::StateDrawable&) { ++states; },
              [](const slog2::EventDrawable&) {}, [](const slog2::ArrowDrawable&) {});
          state_counts[s] = states;
        } catch (...) {
          failures.fetch_add(1);
        }
      });
    }
    for (auto& t : pool) t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int s = 1; s < kSessions; ++s)
    EXPECT_EQ(state_counts[s], state_counts[0]) << "session " << s;
  EXPECT_GT(state_counts[0], 0u);

  // With 8 sessions touching every frame, the shared cache must have served
  // most decodes from memory: at most one miss per frame, the rest hits.
  const auto after = slog2::FrameCache::global().stats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_GT(after.hits - before.hits, after.misses - before.misses);

  std::filesystem::remove(path);
}

TEST(FrameCacheConcurrency, EvictionKeepsServingAndBoundsBytes) {
  const clog2::File f = gen_trace(60000, 4, 13);
  slog2::ConvertOptions co;
  co.frame_size = 4 * 1024;
  const std::vector<std::uint8_t> bytes = slog2::serialize(slog2::convert(f, co));

  slog2::FrameCache& cache = slog2::FrameCache::global();
  const std::size_t saved = cache.capacity();
  cache.clear();
  cache.set_capacity(64 * 1024);  // far smaller than the trace: force eviction

  {
    slog2::Navigator nav(bytes);
    std::uint64_t pass1 = 0, pass2 = 0;
    nav.visit_window(
        nav.t_min(), nav.t_max(),
        [&](const slog2::StateDrawable&) { ++pass1; },
        [](const slog2::EventDrawable&) {}, [](const slog2::ArrowDrawable&) {});
    nav.visit_window(
        nav.t_min(), nav.t_max(),
        [&](const slog2::StateDrawable&) { ++pass2; },
        [](const slog2::EventDrawable&) {}, [](const slog2::ArrowDrawable&) {});
    EXPECT_EQ(pass1, pass2);  // eviction must never change what a visit sees

    const auto st = cache.stats();
    EXPECT_GT(st.evictions, 0u);
    EXPECT_LE(st.bytes, cache.capacity());
  }

  cache.set_capacity(saved);
  cache.clear();
}

// --- scale -------------------------------------------------------------------

TEST(QueryParallelScale, MillionEventByteIdentity) {
  const clog2::File f = gen_trace(1000000, 16, 42);
  const query::Trace serial(f);
  const query::StateDurations sd = query::state_durations(serial);
  query::MsgGraph serial_g = query::match_messages(f);
  const query::MessageEdges me = query::message_edges(serial_g);
  const bool serial_ok = query::stamp_clocks(serial_g);

  slog2::ConvertOptions co;
  const slog2::File s = slog2::convert(f, co);
  query::LegendSweep sweep;
  s.visit_window(
      s.t_min, s.t_max,
      [&](const slog2::StateDrawable& st) { sweep.add_state(st); },
      [&](const slog2::EventDrawable& e) { sweep.add_event(e); },
      [&](const slog2::ArrowDrawable& a) { sweep.add_arrow(a); });
  const auto serial_totals = sweep.totals();

  for (int threads : {2, 8}) {
    const query::Trace par(f, threads);
    expect_traces_identical(serial, par);
    expect_durations_identical(sd, query::state_durations(par, threads));

    query::MsgGraph par_g = query::match_messages(f);
    expect_edges_identical(me, query::message_edges(par_g, threads));
    EXPECT_EQ(query::stamp_clocks(par_g, threads), serial_ok);
    ASSERT_EQ(par_g.msgs.size(), serial_g.msgs.size());
    for (std::size_t i = 0; i < serial_g.msgs.size(); ++i) {
      ASSERT_EQ(par_g.msgs[i].send_stamp, serial_g.msgs[i].send_stamp)
          << "msg " << i;
      ASSERT_EQ(par_g.msgs[i].recv_stamp, serial_g.msgs[i].recv_stamp)
          << "msg " << i;
    }

    expect_totals_identical(serial_totals, sweep.totals(threads));
  }
}

}  // namespace

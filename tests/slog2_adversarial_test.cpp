// Adversarial conversion inputs: randomized ill-behaved traces (orphan
// halves, unbalanced state events, unknown IDs) must never crash or lose
// accounting — conservation properties tie outputs to inputs exactly.
#include <gtest/gtest.h>

#include "slog2/slog2.hpp"
#include "util/prng.hpp"

namespace {

struct Tally {
  std::uint64_t starts = 0;
  std::uint64_t ends = 0;
  std::uint64_t solos = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t unknowns = 0;
};

// Random garbage stream: event/msg records drawn with no structural
// discipline whatsoever.
std::pair<clog2::File, Tally> adversarial_trace(std::uint64_t seed, int n) {
  util::SplitMix64 rng(seed);
  clog2::File f;
  f.nranks = 3;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "S", "red", ""});
  f.records.emplace_back(clog2::EventDef{30, "E", "yellow", ""});

  Tally tally;
  double t = 0;
  for (int i = 0; i < n; ++i) {
    t += rng.uniform(0, 1e-3);
    const int rank = static_cast<int>(rng.below(3));
    switch (rng.below(6)) {
      case 0:
        f.records.emplace_back(clog2::EventRec{t, rank, 10, "x"});
        ++tally.starts;
        break;
      case 1:
        f.records.emplace_back(clog2::EventRec{t, rank, 11, ""});
        ++tally.ends;
        break;
      case 2:
        f.records.emplace_back(clog2::EventRec{t, rank, 30, "solo"});
        ++tally.solos;
        break;
      case 3: {
        clog2::MsgRec m;
        m.timestamp = t;
        m.rank = rank;
        m.kind = clog2::MsgRec::Kind::kSend;
        m.partner = (rank + 1) % 3;
        m.tag = static_cast<int>(rng.below(4));
        m.size = 8;
        f.records.emplace_back(m);
        ++tally.sends;
        break;
      }
      case 4: {
        clog2::MsgRec m;
        m.timestamp = t;
        m.rank = rank;
        m.kind = clog2::MsgRec::Kind::kRecv;
        m.partner = (rank + 2) % 3;
        m.tag = static_cast<int>(rng.below(4));
        m.size = 8;
        f.records.emplace_back(m);
        ++tally.recvs;
        break;
      }
      default:
        f.records.emplace_back(clog2::EventRec{t, rank, 999, ""});
        ++tally.unknowns;
        break;
    }
  }
  return {std::move(f), tally};
}

class Adversarial : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, Adversarial, ::testing::Values(1, 7, 13, 42, 99));

TEST_P(Adversarial, ConversionConservesEveryInput) {
  const auto [trace, tally] = adversarial_trace(GetParam(), 600);
  std::vector<std::string> warnings;
  const auto out = slog2::convert(trace, {}, &warnings);

  // State accounting: every start either pairs with an end or is counted
  // unclosed; every end either closes a state or is counted unmatched.
  EXPECT_EQ(out.stats.total_states, tally.starts);
  EXPECT_EQ(out.stats.total_states,
            (tally.ends - out.stats.unmatched_state_ends) + out.stats.unclosed_states);

  // Message accounting: arrows + unmatched halves = inputs.
  EXPECT_EQ(out.stats.total_arrows + out.stats.unmatched_sends, tally.sends);
  EXPECT_EQ(out.stats.total_arrows + out.stats.unmatched_recvs, tally.recvs);

  EXPECT_EQ(out.stats.total_events, tally.solos);
  EXPECT_EQ(out.stats.unknown_event_ids, tally.unknowns);

  // Warning messages are capped, never unbounded.
  EXPECT_LE(warnings.size(), 50u);

  // The damaged trace still serializes and parses.
  const auto back = slog2::parse(slog2::serialize(out));
  EXPECT_EQ(back.stats.total_states, out.stats.total_states);
  EXPECT_EQ(back.stats.unclosed_states, out.stats.unclosed_states);
}

TEST_P(Adversarial, NavigatorHandlesDamagedTraces) {
  const auto [trace, tally] = adversarial_trace(GetParam() + 1000, 400);
  slog2::ConvertOptions opts;
  opts.frame_size = 2048;
  const auto out = slog2::convert(trace, opts);
  slog2::Navigator nav(slog2::serialize(out));
  std::size_t states = 0;
  nav.visit_window(nav.t_min(), nav.t_max(),
                   [&](const slog2::StateDrawable&) { ++states; }, nullptr, nullptr);
  EXPECT_EQ(states, out.stats.total_states);
}

}  // namespace

#include "slog2/slog2.hpp"

#include <gtest/gtest.h>

namespace {

// Builders for hand-made CLOG-2 inputs.
clog2::File base_file(int nranks = 2) {
  clog2::File f;
  f.nranks = nranks;
  // State 1: events 10 (start) / 11 (end); state 2: 20/21; solo event 30.
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "Outer", "red", ""});
  f.records.emplace_back(clog2::StateDef{2, 20, 21, "Inner", "green", ""});
  f.records.emplace_back(clog2::EventDef{30, "Mark", "yellow", ""});
  return f;
}

void add_event(clog2::File& f, double t, int rank, int id, std::string text = {}) {
  f.records.emplace_back(clog2::EventRec{t, rank, id, std::move(text)});
}

void add_msg(clog2::File& f, double t, int rank, clog2::MsgRec::Kind kind,
             int partner, int tag, std::uint32_t size) {
  clog2::MsgRec m;
  m.timestamp = t;
  m.rank = rank;
  m.kind = kind;
  m.partner = partner;
  m.tag = tag;
  m.size = size;
  f.records.emplace_back(m);
}

std::vector<slog2::StateDrawable> all_states(const slog2::File& f) {
  std::vector<slog2::StateDrawable> out;
  f.visit_window(
      f.t_min, f.t_max, [&](const slog2::StateDrawable& s) { out.push_back(s); },
      nullptr, nullptr);
  return out;
}

std::vector<slog2::ArrowDrawable> all_arrows(const slog2::File& f) {
  std::vector<slog2::ArrowDrawable> out;
  f.visit_window(f.t_min, f.t_max, nullptr, nullptr,
                 [&](const slog2::ArrowDrawable& a) { out.push_back(a); });
  return out;
}

TEST(Convert, PairsSimpleState) {
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 10, "Line: 5");
  add_event(in, 2.0, 0, 11, "done");

  const auto out = slog2::convert(in);
  EXPECT_TRUE(out.stats.clean());
  EXPECT_EQ(out.stats.total_states, 1u);
  const auto states = all_states(out);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_DOUBLE_EQ(states[0].start_time, 1.0);
  EXPECT_DOUBLE_EQ(states[0].end_time, 2.0);
  EXPECT_EQ(states[0].depth, 0);
  EXPECT_EQ(states[0].start_text, "Line: 5");
  EXPECT_EQ(states[0].end_text, "done");
  EXPECT_EQ(out.category(states[0].category_id)->name, "Outer");
}

TEST(Convert, NestedStatesGetDepths) {
  // The paper: state B (5..8) fully nested in A (3..20) draws inside A.
  clog2::File in = base_file();
  add_event(in, 3.0, 0, 10);   // Outer start
  add_event(in, 5.0, 0, 20);   // Inner start
  add_event(in, 8.0, 0, 21);   // Inner end
  add_event(in, 20.0, 0, 11);  // Outer end

  const auto out = slog2::convert(in);
  EXPECT_TRUE(out.stats.clean());
  const auto states = all_states(out);
  ASSERT_EQ(states.size(), 2u);
  const auto& inner = states[0].start_time == 5.0 ? states[0] : states[1];
  const auto& outer = states[0].start_time == 3.0 ? states[0] : states[1];
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(out.category(inner.category_id)->name, "Inner");
}

TEST(Convert, StatesOnDifferentRanksIndependent) {
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 10);
  add_event(in, 1.5, 1, 10);
  add_event(in, 2.0, 1, 11);
  add_event(in, 3.0, 0, 11);

  const auto out = slog2::convert(in);
  EXPECT_TRUE(out.stats.clean());
  const auto states = all_states(out);
  ASSERT_EQ(states.size(), 2u);
  for (const auto& s : states) EXPECT_EQ(s.depth, 0);  // no cross-rank nesting
}

TEST(Convert, UnmatchedEndReported) {
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 11);  // end with no start
  std::vector<std::string> warnings;
  const auto out = slog2::convert(in, {}, &warnings);
  EXPECT_EQ(out.stats.unmatched_state_ends, 1u);
  EXPECT_FALSE(out.stats.clean());
  EXPECT_FALSE(warnings.empty());
}

TEST(Convert, UnclosedStateClosedAtLastTimestamp) {
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 10);  // never closed
  add_event(in, 9.0, 1, 30);  // later activity moves the horizon
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.unclosed_states, 1u);
  const auto states = all_states(out);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_DOUBLE_EQ(states[0].end_time, 9.0);
}

TEST(Convert, MismatchedInterleavingReported) {
  // Start Outer, start Inner, end Outer (violates LIFO), end Inner.
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 10);
  add_event(in, 2.0, 0, 20);
  add_event(in, 3.0, 0, 11);  // top of stack is Inner, not Outer
  add_event(in, 4.0, 0, 21);
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.unmatched_state_ends, 1u);
  EXPECT_EQ(out.stats.unclosed_states, 1u);  // Outer left open, auto-closed
  // Inner pairs normally; Outer is auto-closed but still drawn.
  EXPECT_EQ(out.stats.total_states, 2u);
}

TEST(Convert, SoloEventsBecomeBubbles) {
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 30, "Channel: C3");
  add_event(in, 2.0, 1, 30);
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.total_events, 2u);
  std::size_t n = 0;
  out.visit_window(
      out.t_min, out.t_max, nullptr,
      [&](const slog2::EventDrawable& e) {
        ++n;
        EXPECT_EQ(out.category(e.category_id)->name, "Mark");
      },
      nullptr);
  EXPECT_EQ(n, 2u);
}

TEST(Convert, UnknownEventIdCounted) {
  clog2::File in = base_file();
  add_event(in, 1.0, 0, 555);
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.unknown_event_ids, 1u);
}

TEST(Convert, MatchesSendRecvIntoArrow) {
  clog2::File in = base_file();
  add_msg(in, 1.0, 0, clog2::MsgRec::Kind::kSend, 1, 7, 128);
  add_msg(in, 1.5, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 128);
  const auto out = slog2::convert(in);
  EXPECT_TRUE(out.stats.clean());
  const auto arrows = all_arrows(out);
  ASSERT_EQ(arrows.size(), 1u);
  EXPECT_EQ(arrows[0].src_rank, 0);
  EXPECT_EQ(arrows[0].dst_rank, 1);
  EXPECT_DOUBLE_EQ(arrows[0].start_time, 1.0);
  EXPECT_DOUBLE_EQ(arrows[0].end_time, 1.5);
  EXPECT_EQ(arrows[0].tag, 7);
  EXPECT_EQ(arrows[0].size, 128u);
}

TEST(Convert, RecvBeforeSendStillMatches) {
  // Clock skew can order the receive half first in the merged stream.
  clog2::File in = base_file();
  add_msg(in, 0.9, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 64);
  add_msg(in, 1.0, 0, clog2::MsgRec::Kind::kSend, 1, 7, 64);
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.total_arrows, 1u);
  EXPECT_EQ(out.stats.unmatched_sends, 0u);
  EXPECT_EQ(out.stats.unmatched_recvs, 0u);
}

TEST(Convert, FifoMatchingPerChannel) {
  // Two sends then two receives on the same (src,dst,tag): k-th send pairs
  // with k-th receive.
  clog2::File in = base_file();
  add_msg(in, 1.0, 0, clog2::MsgRec::Kind::kSend, 1, 7, 1);
  add_msg(in, 2.0, 0, clog2::MsgRec::Kind::kSend, 1, 7, 2);
  add_msg(in, 3.0, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 1);
  add_msg(in, 4.0, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 2);
  const auto out = slog2::convert(in);
  const auto arrows = all_arrows(out);
  ASSERT_EQ(arrows.size(), 2u);
  for (const auto& a : arrows) {
    if (a.start_time == 1.0) {
      EXPECT_DOUBLE_EQ(a.end_time, 3.0);
    }
    if (a.start_time == 2.0) {
      EXPECT_DOUBLE_EQ(a.end_time, 4.0);
    }
  }
}

TEST(Convert, UnmatchedHalvesCounted) {
  clog2::File in = base_file();
  add_msg(in, 1.0, 0, clog2::MsgRec::Kind::kSend, 1, 7, 1);
  add_msg(in, 2.0, 1, clog2::MsgRec::Kind::kRecv, 0, 9, 1);  // tag differs
  std::vector<std::string> warnings;
  const auto out = slog2::convert(in, {}, &warnings);
  EXPECT_EQ(out.stats.unmatched_sends, 1u);
  EXPECT_EQ(out.stats.unmatched_recvs, 1u);
  EXPECT_EQ(out.stats.total_arrows, 0u);
  EXPECT_EQ(warnings.size(), 2u);
}

TEST(Convert, EqualDrawablesDetected) {
  // The paper's Section III-C: arrows stamped within clock resolution end up
  // with identical coordinates and trigger the "Equal Drawables" warning.
  clog2::File in = base_file();
  for (int i = 0; i < 3; ++i) {
    add_msg(in, 1.0, 0, clog2::MsgRec::Kind::kSend, 1, 7, 4);
    add_msg(in, 2.0, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 4);
  }
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.total_arrows, 3u);
  EXPECT_EQ(out.stats.equal_drawables, 2u);  // 3 identical arrows -> 2 dupes
}

TEST(Convert, SpreadArrowsRaiseNoWarning) {
  // With distinct timestamps (the paper's 1 ms usleep fix) no warning fires.
  clog2::File in = base_file();
  for (int i = 0; i < 3; ++i) {
    add_msg(in, 1.0 + 0.001 * i, 0, clog2::MsgRec::Kind::kSend, 1, 7, 4);
    add_msg(in, 2.0 + 0.001 * i, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 4);
  }
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.equal_drawables, 0u);
}

TEST(Convert, EmptyTrace) {
  clog2::File in = base_file();
  const auto out = slog2::convert(in);
  EXPECT_EQ(out.stats.total_states + out.stats.total_events + out.stats.total_arrows,
            0u);
  EXPECT_DOUBLE_EQ(out.t_min, 0.0);
  EXPECT_DOUBLE_EQ(out.t_max, 0.0);
  ASSERT_NE(out.root, nullptr);
}

TEST(Convert, BadOptionsRejected) {
  clog2::File in = base_file();
  slog2::ConvertOptions opts;
  opts.frame_size = 0;
  EXPECT_THROW(slog2::convert(in, opts), util::UsageError);
  opts.frame_size = 1024;
  opts.max_depth = 99;
  EXPECT_THROW(slog2::convert(in, opts), util::UsageError);
}

TEST(Convert, CategoryLookup) {
  const auto out = slog2::convert(base_file());
  ASSERT_NE(out.category(slog2::kArrowCategoryId), nullptr);
  EXPECT_EQ(out.category(slog2::kArrowCategoryId)->name, "message");
  EXPECT_EQ(out.category(9999), nullptr);
}

}  // namespace

// Navigator: partial (lazy) loading from the frame directory — the real
// SLOG-2's defining capability.
#include <gtest/gtest.h>

#include "slog2/slog2.hpp"
#include "util/fs.hpp"
#include "util/prng.hpp"

namespace {

clog2::File random_trace(std::uint64_t seed, int n) {
  util::SplitMix64 rng(seed);
  clog2::File f;
  f.nranks = 4;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "S", "red", ""});
  struct Timed {
    double t;
    clog2::Record rec;
  };
  std::vector<Timed> timed;
  for (int i = 0; i < n; ++i) {
    const int rank = static_cast<int>(rng.below(4));
    const double s = rng.uniform(0, 9);
    const double e = s + rng.uniform(1e-5, 0.5);
    timed.push_back({s, clog2::EventRec{s, rank, 10, "some popup text"}});
    timed.push_back({e, clog2::EventRec{e, rank, 11, ""}});
  }
  std::sort(timed.begin(), timed.end(),
            [](const Timed& a, const Timed& b) { return a.t < b.t; });
  for (auto& t : timed) f.records.emplace_back(std::move(t.rec));
  return f;
}

slog2::File small_frames(int n_states, std::uint64_t seed = 3) {
  slog2::ConvertOptions opts;
  opts.frame_size = 1024;  // many small frames
  return slog2::convert(random_trace(seed, n_states), opts);
}

TEST(Navigator, HeaderMatchesFile) {
  const auto file = small_frames(2000);
  slog2::Navigator nav(slog2::serialize(file));
  EXPECT_EQ(nav.nranks(), file.nranks);
  EXPECT_DOUBLE_EQ(nav.t_min(), file.t_min);
  EXPECT_DOUBLE_EQ(nav.t_max(), file.t_max);
  EXPECT_EQ(nav.categories().size(), file.categories.size());
  EXPECT_EQ(nav.stats().total_states, file.stats.total_states);
  EXPECT_EQ(nav.total_frames(), file.stats.frames);
  ASSERT_NE(nav.category(1), nullptr);
  EXPECT_EQ(nav.category(1)->name, "S");
}

TEST(Navigator, FullWindowMatchesEagerParse) {
  const auto file = small_frames(1500);
  slog2::Navigator nav(slog2::serialize(file));

  auto collect = [](auto&& visit) {
    std::vector<std::tuple<int, double, double>> sig;
    visit([&](const slog2::StateDrawable& s) {
      sig.emplace_back(s.rank, s.start_time, s.end_time);
    });
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  const auto eager = collect([&](auto cb) {
    file.visit_window(file.t_min, file.t_max, cb, nullptr, nullptr);
  });
  const auto lazy = collect([&](auto cb) {
    nav.visit_window(nav.t_min(), nav.t_max(), cb, nullptr, nullptr);
  });
  EXPECT_EQ(eager, lazy);
  EXPECT_EQ(nav.frames_decoded(), nav.total_frames());
}

TEST(Navigator, ZoomedWindowDecodesOnlyAFewFrames) {
  const auto file = small_frames(4000);
  slog2::Navigator nav(slog2::serialize(file));
  ASSERT_GT(nav.total_frames(), 20u);

  const double span = nav.t_max() - nav.t_min();
  const double a = nav.t_min() + span * 0.50;
  const double b = a + span * 0.01;
  std::size_t hits = 0;
  nav.visit_window(a, b, [&](const slog2::StateDrawable&) { ++hits; }, nullptr,
                   nullptr);
  EXPECT_GT(hits, 0u);
  // The whole point: a narrow window touches a small fraction of frames.
  EXPECT_LT(nav.frames_decoded(), nav.total_frames() / 2);
}

TEST(Navigator, DecodedFramesAreCached) {
  const auto file = small_frames(1000);
  slog2::Navigator nav(slog2::serialize(file));
  const double span = nav.t_max() - nav.t_min();
  const double a = nav.t_min() + span * 0.3;
  const double b = a + span * 0.05;

  nav.visit_window(a, b, [](const slog2::StateDrawable&) {}, nullptr, nullptr);
  const std::size_t first = nav.frames_decoded();
  nav.visit_window(a, b, [](const slog2::StateDrawable&) {}, nullptr, nullptr);
  EXPECT_EQ(nav.frames_decoded(), first);  // repeat query decodes nothing new
}

TEST(Navigator, PreviewCoveringNeedsNoLeafDecoding) {
  const auto file = small_frames(4000);
  slog2::Navigator nav(slog2::serialize(file));

  const auto view = nav.preview_covering(nav.t_min(), nav.t_max());
  ASSERT_NE(view.preview, nullptr);
  EXPECT_EQ(view.preview->arrow_count, nav.stats().total_arrows);
  EXPECT_EQ(nav.frames_decoded(), 0u);  // previews come from the directory

  // A narrow window resolves to a deeper (smaller) covering frame.
  const double span = nav.t_max() - nav.t_min();
  const auto deep =
      nav.preview_covering(nav.t_min() + span * 0.2, nav.t_min() + span * 0.21);
  ASSERT_NE(deep.preview, nullptr);
  EXPECT_LT(deep.t1 - deep.t0, span * 0.9);
  EXPECT_EQ(nav.frames_decoded(), 0u);
}

TEST(Navigator, FileConstructor) {
  util::TempDir dir;
  const auto file = small_frames(500);
  slog2::write_file(dir.file("t.slog2"), file);
  slog2::Navigator nav(dir.file("t.slog2"));
  EXPECT_EQ(nav.stats().total_states, file.stats.total_states);
}

TEST(Navigator, RejectsCorruptDirectory) {
  auto bytes = slog2::serialize(small_frames(200));
  // Corrupt somewhere in the middle of the directory region.
  bytes[bytes.size() / 3] ^= 0xFF;
  bool threw = false;
  try {
    slog2::Navigator nav(std::move(bytes));
    // May also surface only when a frame is decoded:
    nav.visit_window(nav.t_min(), nav.t_max(), [](const slog2::StateDrawable&) {},
                     nullptr, nullptr);
  } catch (const util::IoError&) {
    threw = true;
  }
  // Either the load or the decode must notice, or — rarely — the flipped
  // byte only garbles popup text, which round-trips as data. Accept both,
  // but never crash.
  SUCCEED() << (threw ? "rejected" : "tolerated as data");
}

TEST(Navigator, EmptyTrace) {
  clog2::File empty;
  empty.nranks = 0;
  const auto file = slog2::convert(empty);
  slog2::Navigator nav(slog2::serialize(file));
  std::size_t hits = 0;
  nav.visit_window(0, 1, [&](const slog2::StateDrawable&) { ++hits; }, nullptr,
                   nullptr);
  EXPECT_EQ(hits, 0u);
}

}  // namespace

// Frame-tree invariants, previews, serialization, and the frame-size knob —
// including randomized property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "slog2/slog2.hpp"
#include "util/prng.hpp"

namespace {

// Random trace with `n` states, `n/2` solo events, `n/4` matched messages.
clog2::File random_trace(std::uint64_t seed, int n, int nranks = 4,
                         double span = 10.0) {
  util::SplitMix64 rng(seed);
  clog2::File f;
  f.nranks = nranks;
  f.records.emplace_back(clog2::StateDef{1, 10, 11, "S", "red", ""});
  f.records.emplace_back(clog2::EventDef{30, "E", "yellow", ""});

  struct Timed {
    double t;
    clog2::Record rec;
  };
  std::vector<Timed> timed;
  for (int i = 0; i < n; ++i) {
    const int rank = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
    const double s = rng.uniform(0, span * 0.9);
    const double e = s + rng.uniform(1e-6, span * 0.1);
    timed.push_back({s, clog2::EventRec{s, rank, 10, "txt"}});
    timed.push_back({e, clog2::EventRec{e, rank, 11, ""}});
  }
  for (int i = 0; i < n / 2; ++i) {
    const int rank = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
    const double t = rng.uniform(0, span);
    timed.push_back({t, clog2::EventRec{t, rank, 30, "bubble"}});
  }
  for (int i = 0; i < n / 4; ++i) {
    const int src = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
    int dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(nranks)));
    if (dst == src) dst = (dst + 1) % nranks;
    const double ts = rng.uniform(0, span * 0.9);
    const double tr = ts + rng.uniform(1e-6, span * 0.05);
    clog2::MsgRec send;
    send.timestamp = ts;
    send.rank = src;
    send.kind = clog2::MsgRec::Kind::kSend;
    send.partner = dst;
    send.tag = i;  // unique tag per pair keeps matching unambiguous
    send.size = 64;
    clog2::MsgRec recv = send;
    recv.timestamp = tr;
    recv.rank = dst;
    recv.kind = clog2::MsgRec::Kind::kRecv;
    recv.partner = src;
    timed.push_back({ts, send});
    timed.push_back({tr, recv});
  }
  // Per-rank state events must be chronological for LIFO pairing; a global
  // time sort guarantees that. (States on one rank may interleave rather
  // than nest, so keep n low per rank... instead, give each state its own
  // rank slot sequence: sorting by time is enough because random intervals
  // on the same rank can overlap non-hierarchically, which the converter
  // reports as warnings; we accept them and only check structural
  // invariants here.)
  std::sort(timed.begin(), timed.end(),
            [](const Timed& a, const Timed& b) { return a.t < b.t; });
  for (auto& t : timed) f.records.emplace_back(std::move(t.rec));
  return f;
}

struct TreeCheck {
  std::size_t states = 0, events = 0, arrows = 0;
  std::size_t leaf_overflows = 0;
  bool intervals_ok = true;
  bool containment_ok = true;
  bool child_halves_ok = true;
};

TreeCheck check_tree(const slog2::File& f, std::uint64_t frame_size, int max_depth) {
  TreeCheck c;
  f.visit_frames([&](const slog2::Frame& fr) {
    if (fr.t1 < fr.t0) c.intervals_ok = false;
    for (const auto& s : fr.states) {
      ++c.states;
      if (s.start_time < fr.t0 - 1e-12 || s.end_time > fr.t1 + 1e-12)
        c.containment_ok = false;
    }
    for (const auto& e : fr.events) {
      ++c.events;
      if (e.time < fr.t0 - 1e-12 || e.time > fr.t1 + 1e-12) c.containment_ok = false;
    }
    for (const auto& a : fr.arrows) {
      ++c.arrows;
      const double lo = std::min(a.start_time, a.end_time);
      const double hi = std::max(a.start_time, a.end_time);
      if (lo < fr.t0 - 1e-12 || hi > fr.t1 + 1e-12) c.containment_ok = false;
    }
    const double mid = 0.5 * (fr.t0 + fr.t1);
    if (fr.left &&
        (std::abs(fr.left->t0 - fr.t0) > 1e-12 || std::abs(fr.left->t1 - mid) > 1e-9))
      c.child_halves_ok = false;
    if (fr.right && (std::abs(fr.right->t0 - mid) > 1e-9 ||
                     std::abs(fr.right->t1 - fr.t1) > 1e-12))
      c.child_halves_ok = false;
    const bool is_leaf = !fr.left && !fr.right;
    if (is_leaf && fr.payload_bytes() > frame_size && fr.depth < max_depth)
      ++c.leaf_overflows;
  });
  return c;
}

class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(TreeProperty, InvariantsHoldOnRandomTraces) {
  const auto in = random_trace(GetParam(), 400);
  slog2::ConvertOptions opts;
  opts.frame_size = 2048;
  const auto out = slog2::convert(in, opts);

  const auto c = check_tree(out, opts.frame_size, opts.max_depth);
  EXPECT_TRUE(c.intervals_ok);
  EXPECT_TRUE(c.containment_ok);
  EXPECT_TRUE(c.child_halves_ok);
  EXPECT_EQ(c.leaf_overflows, 0u);
  // Nothing lost in tree construction.
  EXPECT_EQ(c.states, out.stats.total_states);
  EXPECT_EQ(c.events, out.stats.total_events);
  EXPECT_EQ(c.arrows, out.stats.total_arrows);
  // All arrows matched (unique tags).
  EXPECT_EQ(out.stats.unmatched_sends, 0u);
  EXPECT_EQ(out.stats.unmatched_recvs, 0u);
}

TEST_P(TreeProperty, VisitFullWindowSeesEverything) {
  const auto in = random_trace(GetParam() + 100, 300);
  const auto out = slog2::convert(in);
  std::size_t states = 0, events = 0, arrows = 0;
  out.visit_window(
      out.t_min, out.t_max, [&](const slog2::StateDrawable&) { ++states; },
      [&](const slog2::EventDrawable&) { ++events; },
      [&](const slog2::ArrowDrawable&) { ++arrows; });
  EXPECT_EQ(states, out.stats.total_states);
  EXPECT_EQ(events, out.stats.total_events);
  EXPECT_EQ(arrows, out.stats.total_arrows);
}

TEST_P(TreeProperty, SerializeParseRoundTrip) {
  const auto in = random_trace(GetParam() + 200, 200);
  const auto out = slog2::convert(in);
  const auto bytes = slog2::serialize(out);
  const auto back = slog2::parse(bytes);

  EXPECT_EQ(back.nranks, out.nranks);
  EXPECT_DOUBLE_EQ(back.t_min, out.t_min);
  EXPECT_DOUBLE_EQ(back.t_max, out.t_max);
  EXPECT_EQ(back.categories.size(), out.categories.size());
  EXPECT_EQ(back.stats.total_states, out.stats.total_states);
  EXPECT_EQ(back.stats.total_arrows, out.stats.total_arrows);

  // Compare full drawable multisets via the window visitor.
  auto summarize = [](const slog2::File& f) {
    std::vector<std::tuple<int, int, double, double>> sig;
    f.visit_window(
        f.t_min, f.t_max,
        [&](const slog2::StateDrawable& s) {
          sig.emplace_back(0, s.rank, s.start_time, s.end_time);
        },
        [&](const slog2::EventDrawable& e) {
          sig.emplace_back(1, e.rank, e.time, 0.0);
        },
        [&](const slog2::ArrowDrawable& a) {
          sig.emplace_back(2, a.src_rank, a.start_time, a.end_time);
        });
    std::sort(sig.begin(), sig.end());
    return sig;
  };
  EXPECT_EQ(summarize(back), summarize(out));
}

TEST(Tree, WindowQueryPrunes) {
  const auto in = random_trace(9, 500);
  const auto out = slog2::convert(in);
  const double a = out.t_min + (out.t_max - out.t_min) * 0.4;
  const double b = out.t_min + (out.t_max - out.t_min) * 0.6;
  std::size_t total = 0;
  out.visit_window(
      a, b,
      [&](const slog2::StateDrawable& s) {
        ++total;
        EXPECT_GE(s.end_time, a);
        EXPECT_LE(s.start_time, b);
      },
      [&](const slog2::EventDrawable& e) {
        ++total;
        EXPECT_GE(e.time, a);
        EXPECT_LE(e.time, b);
      },
      [&](const slog2::ArrowDrawable& ar) {
        ++total;
        EXPECT_GE(std::max(ar.start_time, ar.end_time), a);
        EXPECT_LE(std::min(ar.start_time, ar.end_time), b);
      });
  EXPECT_GT(total, 0u);
  EXPECT_LT(total,
            out.stats.total_states + out.stats.total_events + out.stats.total_arrows);
}

TEST(Tree, SmallerFrameSizeMeansDeeperTree) {
  const auto in = random_trace(4, 600);
  slog2::ConvertOptions big, small;
  big.frame_size = 1 << 20;
  small.frame_size = 512;
  const auto coarse = slog2::convert(in, big);
  const auto fine = slog2::convert(in, small);
  EXPECT_LT(coarse.stats.frames, fine.stats.frames);
  EXPECT_LE(coarse.stats.tree_depth, fine.stats.tree_depth);
  // Same drawables regardless of framing.
  EXPECT_EQ(coarse.stats.total_states, fine.stats.total_states);
  EXPECT_EQ(coarse.stats.total_arrows, fine.stats.total_arrows);
}

TEST(Tree, RootPreviewSummarizesEverything) {
  const auto in = random_trace(6, 300);
  const auto out = slog2::convert(in);
  ASSERT_NE(out.root, nullptr);
  const auto& pv = out.root->preview;
  EXPECT_EQ(pv.arrow_count, out.stats.total_arrows);

  // Total occupancy in the preview equals the sum of state durations
  // (every state lies within the root interval).
  double occupancy = 0.0;
  for (const auto& [cat, buckets] : pv.state_occupancy)
    for (float v : buckets) occupancy += static_cast<double>(v);
  double duration = 0.0;
  out.visit_window(
      out.t_min, out.t_max,
      [&](const slog2::StateDrawable& s) { duration += s.end_time - s.start_time; },
      nullptr, nullptr);
  EXPECT_NEAR(occupancy, duration, duration * 0.02 + 1e-9);

  std::uint64_t event_total = 0;
  for (const auto& [cat, buckets] : pv.event_counts)
    for (std::uint32_t v : buckets) event_total += v;
  EXPECT_EQ(event_total, out.stats.total_events);
}

TEST(Tree, SerializedFileRejectsTruncation) {
  const auto out = slog2::convert(random_trace(7, 50));
  const auto bytes = slog2::serialize(out);
  // Sample a few dozen cut points across the file.
  for (std::size_t i = 1; i <= 24; ++i) {
    const std::size_t cut = bytes.size() * i / 25;
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(slog2::parse(prefix), util::IoError) << "cut=" << cut;
  }
}

TEST(Tree, SerializedFileRejectsBadMagic) {
  auto bytes = slog2::serialize(slog2::convert(random_trace(8, 10)));
  bytes[2] ^= 0xFF;
  EXPECT_THROW(slog2::parse(bytes), util::IoError);
}

TEST(Tree, ToTextSummarizes) {
  const auto out = slog2::convert(random_trace(10, 40));
  const auto text = slog2::to_text(out);
  EXPECT_NE(text.find("SLOG-2"), std::string::npos);
  EXPECT_NE(text.find("drawables"), std::string::npos);
  EXPECT_NE(text.find("message"), std::string::npos);
}

}  // namespace

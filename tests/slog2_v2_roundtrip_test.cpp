// SLOG-2 v2 (columnar delta-varint) frame payloads, held to the v1 format's
// byte-level rigor:
//
//   * codec level: seeded random drawable sets round-trip through
//     encode_drawables_v2/decode_drawables_v2 bit-exactly (NaNs, signed
//     zeros, infinities included), the decoder consumes exactly the bytes
//     the encoder wrote, and re-encoding the decode is byte-identical;
//   * format level: a v2 conversion of any CLOG-2 input is semantically
//     identical to the v1 conversion — same to_text dump, same render_svg,
//     same LegendSweep / WindowOccupancy rollups, same stats — with v1 as
//     the ground-truth oracle, across frame sizes and via both parse() and
//     the lazy Navigator;
//   * online level: traced::OnlineConverter sealing v2 chunks finalizes to
//     the same bytes as the offline v2 conversion at every seal size;
//   * scale (V2Scale, heavy): the million-event tracegen trace converts
//     identically under both encodings and v2's frame payload bytes are at
//     least 3x smaller.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "clog2/clog2.hpp"
#include "jumpshot/render.hpp"
#include "query/slog2_rollup.hpp"
#include "slog2/frame_codec.hpp"
#include "slog2/slog2.hpp"
#include "traced/online_convert.hpp"
#include "tracegen/tracegen.hpp"
#include "util/bytebuf.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/varint.hpp"

#ifndef PILOT_FIXTURE_DIR
#error "PILOT_FIXTURE_DIR must be defined by the build"
#endif

namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(PILOT_FIXTURE_DIR) / name;
}

// --- random drawables (codec-level property tests) ---------------------------

struct SplitMix64 {
  std::uint64_t x;
  explicit SplitMix64(std::uint64_t seed) : x(seed) {}
  std::uint64_t next() {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/// Mostly near-sorted small times (the real workload), salted with the
/// doubles a lossy codec would mangle: NaN, infinities, signed zero,
/// denormals, and full-range bit patterns.
double random_time(SplitMix64& rng, double* clock) {
  switch (rng.below(16)) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return std::numeric_limits<double>::infinity();
    case 2: return -std::numeric_limits<double>::infinity();
    case 3: return -0.0;
    case 4: return std::numeric_limits<double>::denorm_min();
    case 5: {
      const std::uint64_t bits = rng.next();
      double v;
      std::memcpy(&v, &bits, sizeof v);
      return v;
    }
    default:
      *clock += static_cast<double>(rng.below(1000)) * 1e-6;
      return *clock;
  }
}

std::string random_text(SplitMix64& rng) {
  if (rng.below(4) != 0) return "";  // the common case: no popup text
  std::string s;
  const std::uint64_t n = rng.below(24);
  for (std::uint64_t i = 0; i < n; ++i)
    s.push_back(static_cast<char>('a' + rng.below(26)));
  return s;
}

struct DrawableSet {
  std::vector<slog2::StateDrawable> states;
  std::vector<slog2::EventDrawable> events;
  std::vector<slog2::ArrowDrawable> arrows;
};

DrawableSet random_set(std::uint64_t seed, std::size_t ns, std::size_t ne,
                       std::size_t na) {
  SplitMix64 rng(seed);
  double clock = 0.0;
  DrawableSet d;
  for (std::size_t i = 0; i < ns; ++i) {
    slog2::StateDrawable s;
    s.category_id = static_cast<std::int32_t>(rng.below(64)) - 8;
    s.rank = static_cast<std::int32_t>(rng.below(1 << 20));
    s.depth = static_cast<std::int32_t>(rng.below(24));
    s.start_time = random_time(rng, &clock);
    s.end_time = random_time(rng, &clock);
    s.start_text = random_text(rng);
    s.end_text = random_text(rng);
    d.states.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < ne; ++i) {
    slog2::EventDrawable e;
    e.category_id = static_cast<std::int32_t>(rng.below(64)) - 8;
    e.rank = static_cast<std::int32_t>(rng.below(1 << 20));
    e.time = random_time(rng, &clock);
    e.text = random_text(rng);
    d.events.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < na; ++i) {
    slog2::ArrowDrawable a;
    a.src_rank = static_cast<std::int32_t>(rng.below(1 << 20));
    a.dst_rank = static_cast<std::int32_t>(rng.below(1 << 20));
    a.tag = static_cast<std::int32_t>(rng.below(1 << 16)) - 4;
    a.size = static_cast<std::uint32_t>(rng.next());
    a.start_time = random_time(rng, &clock);
    a.end_time = random_time(rng, &clock);
    d.arrows.push_back(a);
  }
  return d;
}

bool same_bits(double a, double b) {
  std::uint64_t x, y;
  std::memcpy(&x, &a, sizeof x);
  std::memcpy(&y, &b, sizeof y);
  return x == y;
}

void expect_same(const DrawableSet& a, const DrawableSet& b) {
  ASSERT_EQ(a.states.size(), b.states.size());
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.arrows.size(), b.arrows.size());
  for (std::size_t i = 0; i < a.states.size(); ++i) {
    const auto& x = a.states[i];
    const auto& y = b.states[i];
    EXPECT_EQ(x.category_id, y.category_id) << "state " << i;
    EXPECT_EQ(x.rank, y.rank) << "state " << i;
    EXPECT_EQ(x.depth, y.depth) << "state " << i;
    EXPECT_TRUE(same_bits(x.start_time, y.start_time)) << "state " << i;
    EXPECT_TRUE(same_bits(x.end_time, y.end_time)) << "state " << i;
    EXPECT_EQ(x.start_text, y.start_text) << "state " << i;
    EXPECT_EQ(x.end_text, y.end_text) << "state " << i;
  }
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const auto& x = a.events[i];
    const auto& y = b.events[i];
    EXPECT_EQ(x.category_id, y.category_id) << "event " << i;
    EXPECT_EQ(x.rank, y.rank) << "event " << i;
    EXPECT_TRUE(same_bits(x.time, y.time)) << "event " << i;
    EXPECT_EQ(x.text, y.text) << "event " << i;
  }
  for (std::size_t i = 0; i < a.arrows.size(); ++i) {
    const auto& x = a.arrows[i];
    const auto& y = b.arrows[i];
    EXPECT_EQ(x.src_rank, y.src_rank) << "arrow " << i;
    EXPECT_EQ(x.dst_rank, y.dst_rank) << "arrow " << i;
    EXPECT_EQ(x.tag, y.tag) << "arrow " << i;
    EXPECT_EQ(x.size, y.size) << "arrow " << i;
    EXPECT_TRUE(same_bits(x.start_time, y.start_time)) << "arrow " << i;
    EXPECT_TRUE(same_bits(x.end_time, y.end_time)) << "arrow " << i;
  }
}

TEST(V2Codec, RandomSetsRoundTripBitExactly) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    SplitMix64 shape(seed * 1000003);
    const DrawableSet in = random_set(seed, shape.below(200), shape.below(120),
                                      shape.below(120));
    util::ByteWriter w;
    slog2::detail::encode_drawables_v2(w, in.states, in.events, in.arrows);
    const std::vector<std::uint8_t> bytes = w.bytes();

    DrawableSet out;
    util::ByteReader r(bytes);
    slog2::detail::decode_drawables_v2(r, &out.states, &out.events,
                                       &out.arrows);
    EXPECT_TRUE(r.at_end()) << "decoder did not consume the whole payload";
    expect_same(in, out);

    // Re-encoding the decode is byte-identical (canonical varints).
    util::ByteWriter w2;
    slog2::detail::encode_drawables_v2(w2, out.states, out.events, out.arrows);
    EXPECT_EQ(w2.bytes(), bytes);
  }
}

TEST(V2Codec, EmptyPayloadIsThreeBytes) {
  util::ByteWriter w;
  slog2::detail::encode_drawables_v2(w, {}, {}, {});
  EXPECT_EQ(w.bytes().size(), 3u);  // three zero counts
  DrawableSet out;
  util::ByteReader r(w.bytes());
  slog2::detail::decode_drawables_v2(r, &out.states, &out.events, &out.arrows);
  EXPECT_TRUE(r.at_end());
  EXPECT_TRUE(out.states.empty());
  EXPECT_TRUE(out.events.empty());
  EXPECT_TRUE(out.arrows.empty());
}

// --- differential: v1 is the ground-truth oracle -----------------------------

/// Sum of the on-disk payload bytes each encoding produces for the same
/// frame tree (the honest compression metric: headers, category tables and
/// directories are identical between the two files).
std::size_t v1_payload_bytes(const slog2::File& f) {
  std::size_t total = 0;
  f.visit_frames([&](const slog2::Frame& fr) { total += fr.payload_bytes(); });
  return total;
}

std::size_t v2_payload_bytes(const slog2::File& f) {
  std::size_t total = 0;
  f.visit_frames([&](const slog2::Frame& fr) {
    util::ByteWriter w;
    slog2::detail::encode_drawables_v2(w, fr.states, fr.events, fr.arrows);
    total += w.bytes().size();
  });
  return total;
}

void expect_rollups_equal(slog2::Navigator& v1, slog2::Navigator& v2,
                          const std::string& label) {
  query::LegendSweep sweep1, sweep2;
  query::WindowOccupancy occ1(v1.nranks(), v1.t_min(), v1.t_max());
  query::WindowOccupancy occ2(v2.nranks(), v2.t_min(), v2.t_max());
  const double lo = -std::numeric_limits<double>::infinity();
  const double hi = std::numeric_limits<double>::infinity();
  v1.visit_window(
      lo, hi, [&](const slog2::StateDrawable& s) { sweep1.add_state(s); occ1.add_state(s); },
      [&](const slog2::EventDrawable& e) { sweep1.add_event(e); occ1.add_event(e); },
      [&](const slog2::ArrowDrawable& a) { sweep1.add_arrow(a); occ1.add_arrow(a); });
  v2.visit_window(
      lo, hi, [&](const slog2::StateDrawable& s) { sweep2.add_state(s); occ2.add_state(s); },
      [&](const slog2::EventDrawable& e) { sweep2.add_event(e); occ2.add_event(e); },
      [&](const slog2::ArrowDrawable& a) { sweep2.add_arrow(a); occ2.add_arrow(a); });

  const auto t1 = sweep1.totals();
  const auto t2 = sweep2.totals();
  ASSERT_EQ(t1.size(), t2.size()) << label;
  for (const auto& [cat, tot] : t1) {
    ASSERT_TRUE(t2.count(cat)) << label << ": category " << cat;
    const auto& o = t2.at(cat);
    EXPECT_EQ(tot.count, o.count) << label << ": category " << cat;
    EXPECT_TRUE(same_bits(tot.inclusive, o.inclusive))
        << label << ": category " << cat;
    EXPECT_TRUE(same_bits(tot.exclusive, o.exclusive))
        << label << ": category " << cat;
  }
  const auto& r1 = occ1.ranks();
  const auto& r2 = occ2.ranks();
  ASSERT_EQ(r1.size(), r2.size()) << label;
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].state_count, r2[i].state_count) << label << " rank " << i;
    EXPECT_EQ(r1[i].event_count, r2[i].event_count) << label << " rank " << i;
    EXPECT_EQ(r1[i].arrows_out, r2[i].arrows_out) << label << " rank " << i;
    EXPECT_EQ(r1[i].arrows_in, r2[i].arrows_in) << label << " rank " << i;
    ASSERT_EQ(r1[i].state_time.size(), r2[i].state_time.size())
        << label << " rank " << i;
    for (const auto& [cat, t] : r1[i].state_time)
      EXPECT_TRUE(same_bits(t, r2[i].state_time.at(cat)))
          << label << " rank " << i << " cat " << cat;
  }
}

void expect_v2_matches_v1(const clog2::File& clog, std::uint64_t frame_size,
                          const std::string& label) {
  slog2::ConvertOptions v1o, v2o;
  v1o.frame_size = v2o.frame_size = frame_size;
  v2o.encoding = slog2::FrameEncoding::kV2;
  std::vector<std::string> w1, w2;
  const slog2::File f1 = slog2::convert(clog, v1o, &w1);
  const slog2::File f2 = slog2::convert(clog, v2o, &w2);
  EXPECT_EQ(w1, w2) << label;

  const std::vector<std::uint8_t> b1 = slog2::serialize(f1);
  const std::vector<std::uint8_t> b2 = slog2::serialize(f2);
  ASSERT_NE(b1, b2) << label << ": v2 must actually change the bytes";

  // Round trip through parse(): encodings survive, drawables identical.
  const slog2::File p1 = slog2::parse(b1);
  const slog2::File p2 = slog2::parse(b2);
  EXPECT_EQ(p1.encoding, slog2::FrameEncoding::kV1) << label;
  EXPECT_EQ(p2.encoding, slog2::FrameEncoding::kV2) << label;
  // Re-serializing each parse is byte-identical (both codecs canonical).
  EXPECT_EQ(slog2::serialize(p1), b1) << label;
  EXPECT_EQ(slog2::serialize(p2), b2) << label;

  // The structural dump does not depend on the payload encoding.
  EXPECT_EQ(slog2::to_text(p1, true), slog2::to_text(p2, true)) << label;

  // Neither do the renderer or the rollups, driven through the lazy
  // Navigator (which exercises the per-frame decode path).
  slog2::Navigator n1(b1), n2(b2);
  EXPECT_EQ(n1.encoding(), slog2::FrameEncoding::kV1);
  EXPECT_EQ(n2.encoding(), slog2::FrameEncoding::kV2);
  EXPECT_EQ(jumpshot::render_svg(n1), jumpshot::render_svg(n2)) << label;
  expect_rollups_equal(n1, n2, label);
}

TEST(V2Differential, FixturesAcrossFrameSizes) {
  for (const char* name :
       {"tiny.clog2", "messy.clog2", "diffpair.a.clog2", "diffpair.b.clog2"}) {
    const clog2::File clog = clog2::read_file(fixture(name));
    for (const std::uint64_t fs : {std::uint64_t{256}, std::uint64_t{4096},
                                   std::uint64_t{64} * 1024}) {
      SCOPED_TRACE(std::string(name) + " framesize " + std::to_string(fs));
      expect_v2_matches_v1(clog, fs, name);
    }
  }
}

TEST(V2Differential, TracegenAcrossFrameSizes) {
  tracegen::Options o;
  o.events = 20000;
  o.nranks = 8;
  o.seed = 42;
  const clog2::File clog = tracegen::generate(o);
  for (const std::uint64_t fs :
       {std::uint64_t{2048}, std::uint64_t{64} * 1024}) {
    SCOPED_TRACE("framesize " + std::to_string(fs));
    expect_v2_matches_v1(clog, fs, "tracegen");
  }
}

TEST(V2Differential, GoldenV2FixtureMatchesV1Fixture) {
  // The checked-in v2 golden must be exactly what converting the checked-in
  // CLOG-2 with v2 produces, and must dump identically to the v1 golden.
  const clog2::File clog = clog2::read_file(fixture("tiny.clog2"));
  slog2::ConvertOptions co;
  co.encoding = slog2::FrameEncoding::kV2;
  EXPECT_EQ(util::read_file(fixture("tiny.v2.slog2")),
            slog2::serialize(slog2::convert(clog, co)));
  const slog2::File v1 = slog2::read_file(fixture("tiny.slog2"));
  const slog2::File v2 = slog2::read_file(fixture("tiny.v2.slog2"));
  EXPECT_EQ(slog2::to_text(v1, true), slog2::to_text(v2, true));
}

TEST(V2Differential, ReadOptionsEnforceEncoding) {
  slog2::ReadOptions want_v1, want_v2;
  want_v1.require_encoding = slog2::FrameEncoding::kV1;
  want_v2.require_encoding = slog2::FrameEncoding::kV2;
  const auto v1b = util::read_file(fixture("tiny.slog2"));
  const auto v2b = util::read_file(fixture("tiny.v2.slog2"));
  EXPECT_NO_THROW(slog2::parse(v1b, want_v1));
  EXPECT_NO_THROW(slog2::parse(v2b, want_v2));
  try {
    slog2::parse(v2b, want_v1);
    FAIL() << "forced-v1 reader accepted a v2 file";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("frame-encoding mismatch"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(slog2::parse(v1b, want_v2), util::Error);
}

TEST(V2Differential, UnknownVersionAndEncodingFailLoudly) {
  auto bytes = util::read_file(fixture("tiny.v2.slog2"));
  // Bytes 8..11 are the little-endian version (4 for v2 files).
  ASSERT_GE(bytes.size(), 13u);
  EXPECT_EQ(bytes[8], 4u);
  auto future = bytes;
  future[8] = 9;  // version 9: from a future we do not speak for
  try {
    slog2::parse(future);
    FAIL() << "unknown version accepted";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported version"),
              std::string::npos)
        << e.what();
  }
  auto alien = bytes;
  alien[12] = 7;  // version-4 header carrying an encoding byte we never wrote
  try {
    slog2::parse(alien);
    FAIL() << "unknown frame encoding accepted";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown frame encoding"),
              std::string::npos)
        << e.what();
  }
}

TEST(V2Differential, ParseFrameEncodingNames) {
  EXPECT_EQ(slog2::parse_frame_encoding("v1"), slog2::FrameEncoding::kV1);
  EXPECT_EQ(slog2::parse_frame_encoding("v2"), slog2::FrameEncoding::kV2);
  EXPECT_STREQ(slog2::to_string(slog2::FrameEncoding::kV1), "v1");
  EXPECT_STREQ(slog2::to_string(slog2::FrameEncoding::kV2), "v2");
  EXPECT_THROW(slog2::parse_frame_encoding("v3"), util::Error);
  EXPECT_THROW(slog2::parse_frame_encoding(""), util::Error);
}

// --- online path -------------------------------------------------------------

/// Same chunked drive as traced_test's helper: StreamReader + OnlineConverter.
slog2::File online_convert(const std::vector<std::uint8_t>& bytes,
                           std::size_t chunk, const traced::OnlineOptions& oo,
                           std::vector<std::string>* warnings = nullptr,
                           traced::OnlineUsage* usage_out = nullptr) {
  clog2::StreamReader reader;
  traced::OnlineConverter conv(oo);
  bool begun = false;
  clog2::Record rec;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    reader.feed(bytes.data() + off, n);
    for (;;) {
      const auto st = reader.next(&rec);
      if (reader.header_done() && !begun) {
        conv.begin(reader.nranks());
        begun = true;
      }
      if (st != clog2::StreamReader::Status::kRecord) break;
      conv.push(rec);
    }
  }
  EXPECT_TRUE(reader.finished());
  if (usage_out != nullptr) *usage_out = conv.usage();
  return conv.finalize(warnings);
}

TEST(V2Online, FinalizeMatchesOfflineAcrossSealSizes) {
  tracegen::Options o;
  o.events = 20000;
  o.nranks = 8;
  o.seed = 5;
  const std::vector<std::uint8_t> bytes =
      clog2::serialize(tracegen::generate(o));
  const clog2::File parsed = clog2::parse(bytes);

  traced::OnlineOptions oo;
  oo.convert.encoding = slog2::FrameEncoding::kV2;
  oo.convert.threads = 2;
  // tracegen streams span milliseconds; shrink the reorder window so the
  // admit/seal steady state actually runs (see the zero-seal hint test).
  oo.max_disorder = 1e-6;

  std::vector<std::string> offline_warnings;
  const slog2::File offline =
      slog2::convert(parsed, oo.convert, &offline_warnings);
  ASSERT_EQ(offline.encoding, slog2::FrameEncoding::kV2);
  const std::vector<std::uint8_t> offline_bytes = slog2::serialize(offline);

  bool sealed_somewhere = false;
  for (const std::uint64_t seal :
       {std::uint64_t{1024}, std::uint64_t{64} * 1024,
        std::uint64_t{1} << 30}) {
    SCOPED_TRACE("seal " + std::to_string(seal));
    traced::OnlineOptions run = oo;
    run.seal_bytes = seal;
    std::vector<std::string> warnings;
    traced::OnlineUsage usage;
    const slog2::File online =
        online_convert(bytes, 4096, run, &warnings, &usage);
    if (usage.sealed_chunks > 0) sealed_somewhere = true;
    EXPECT_EQ(slog2::serialize(online), offline_bytes);
    EXPECT_EQ(warnings, offline_warnings);
  }
  EXPECT_TRUE(sealed_somewhere)
      << "no seal size exercised the sealed-chunk path";
}

// --- scale (heavy; keep 'V2Scale' out of the sanitizer ctest regexes) --------

TEST(V2Scale, MillionEventDifferentialAndCompressionRatio) {
  tracegen::Options o;
  o.events = 1000000;
  o.nranks = 16;
  o.seed = 9;
  const clog2::File clog = tracegen::generate(o);

  slog2::ConvertOptions v1o, v2o;
  v1o.threads = v2o.threads = 0;
  v2o.encoding = slog2::FrameEncoding::kV2;
  const slog2::File f1 = slog2::convert(clog, v1o);
  const slog2::File f2 = slog2::convert(clog, v2o);

  // Same frame tree, same structural dump.
  EXPECT_EQ(slog2::to_text(f1), slog2::to_text(f2));

  const std::vector<std::uint8_t> b1 = slog2::serialize(f1);
  const std::vector<std::uint8_t> b2 = slog2::serialize(f2);

  // Acceptance floor: v2 frame payloads at least 3x smaller than v1's on
  // the million-event benchmark.
  const std::size_t p1 = v1_payload_bytes(f1);
  const std::size_t p2 = v2_payload_bytes(f2);
  ASSERT_GT(p2, 0u);
  EXPECT_GE(static_cast<double>(p1) / static_cast<double>(p2), 3.0)
      << "v1 payload " << p1 << " bytes, v2 payload " << p2 << " bytes";
  EXPECT_LT(b2.size(), b1.size());

  // Full-file semantic identity through the Navigator.
  slog2::Navigator n1(b1), n2(b2);
  expect_rollups_equal(n1, n2, "million-event");
}

}  // namespace

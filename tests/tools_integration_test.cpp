// End-to-end through the installed CLI binaries: generate a trace with a
// real Pilot program, then drive pilot-clog2print / pilot-clog2toslog2 /
// pilot-slog2print / pilot-jumpshot / pilot-logsalvage exactly as a user
// would. Tool paths are injected by CMake (PILOT_TOOL_DIR).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "clog2/clog2.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "replay/crosscheck.hpp"
#include "replay/prl.hpp"
#include "slog2/slog2.hpp"
#include "traced/protocol.hpp"
#include "util/fs.hpp"
#include "util/net.hpp"
#include "util/strings.hpp"
#include "workloads/collision_app.hpp"

#ifndef PILOT_TOOL_DIR
#error "PILOT_TOOL_DIR must be defined by the build"
#endif
#ifndef PILOT_EXAMPLE_DIR
#error "PILOT_EXAMPLE_DIR must be defined by the build"
#endif

namespace {

std::string tool(const std::string& name) {
  return std::string(PILOT_TOOL_DIR) + "/" + name;
}

std::string example(const std::string& name) {
  return std::string(PILOT_EXAMPLE_DIR) + "/" + name;
}

int run_cmd(const std::string& cmd, std::string* out = nullptr) {
  // Unique per process: ctest runs tests from this binary concurrently, and a
  // shared capture path lets parallel tests clobber each other's output.
  static const std::string capture =
      "/tmp/pilot_tool_test." + std::to_string(::getpid()) + ".out";
  const std::string with_capture = cmd + " > " + capture + " 2>&1";
  const int rc = std::system(with_capture.c_str());
  if (out) *out = util::read_text_file(capture);
  std::filesystem::remove(capture);
  return rc;
}

/// Exit status of the command (-1 if it did not exit normally).
int run_status(const std::string& cmd, std::string* out = nullptr) {
  const int rc = run_cmd(cmd, out);
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

PI_CHANNEL* g_to_worker = nullptr;
PI_CHANNEL* g_from_worker = nullptr;

int echo_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Write(g_from_worker, "%d", v * 3);
  return 0;
}

void make_trace(const util::TempDir& dir, const std::string& extra = "") {
  std::vector<std::string> args = {"prog", "-pisvc=j",
                                   "-piout=" + dir.path().string(),
                                   "-piwatchdog=30"};
  if (!extra.empty()) args.push_back(extra);
  const auto res = pilot::run(args, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_to_worker = PI_CreateChannel(PI_MAIN, w);
    g_from_worker = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    PI_Write(g_to_worker, "%d", 14);
    int v = 0;
    PI_Read(g_from_worker, "%d", &v);
    EXPECT_EQ(v, 42);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(res.aborted);
}

TEST(Tools, FullPipeline) {
  util::TempDir dir;
  make_trace(dir);
  const std::string clog = dir.file("pilot.clog2").string();
  const std::string slog = dir.file("pilot.slog2").string();
  const std::string svg = dir.file("view.svg").string();

  std::string out;
  // clog2print shows the raw records.
  ASSERT_EQ(run_cmd(tool("pilot-clog2print") + " " + clog, &out), 0) << out;
  EXPECT_NE(out.find("PI_Read"), std::string::npos);
  EXPECT_NE(out.find("msg t="), std::string::npos);

  // Conversion succeeds cleanly (exit 0 = no warnings).
  ASSERT_EQ(run_cmd(tool("pilot-clog2toslog2") + " " + clog, &out), 0) << out;
  EXPECT_NE(out.find("drawables"), std::string::npos);

  // slog2print summarizes the converted file.
  ASSERT_EQ(run_cmd(tool("pilot-slog2print") + " " + slog, &out), 0) << out;
  EXPECT_NE(out.find("SLOG-2"), std::string::npos);

  // The viewer renders and prints the legend.
  ASSERT_EQ(run_cmd(tool("pilot-jumpshot") + " " + slog + " --out=" + svg, &out), 0)
      << out;
  EXPECT_NE(out.find("incl"), std::string::npos) << out;  // legend table
  EXPECT_NE(util::read_text_file(svg).find("<svg"), std::string::npos);

  // Search and window statistics modes.
  ASSERT_EQ(run_cmd(tool("pilot-jumpshot") + " " + slog + " --search=PI_Write", &out),
            0);
  EXPECT_NE(out.find("hit(s)"), std::string::npos);
  ASSERT_EQ(run_cmd(tool("pilot-jumpshot") + " " + slog + " --stats", &out), 0);
  EXPECT_NE(out.find("imbalance"), std::string::npos);

  // Statistics picture.
  const std::string statsvg = dir.file("stats.svg").string();
  ASSERT_EQ(
      run_cmd(tool("pilot-jumpshot") + " " + slog + " --statsvg=" + statsvg, &out), 0);
  EXPECT_NE(util::read_text_file(statsvg).find("imbalance"), std::string::npos);

  // Combined HTML report.
  const std::string report = dir.file("report.html").string();
  ASSERT_EQ(run_cmd(tool("pilot-report") + " " + slog + " --out=" + report, &out), 0)
      << out;
  const std::string html = util::read_text_file(report);
  EXPECT_NE(html.find("<html>"), std::string::npos);
  EXPECT_NE(html.find("Timeline"), std::string::npos);
  EXPECT_NE(html.find("Duration statistics"), std::string::npos);
  EXPECT_NE(html.find("PI_Read"), std::string::npos);
}

TEST(Tools, TracegenThreadedConvertWindowedRender) {
  // The scale pipeline end-to-end: synthesize a trace, convert it with an
  // explicit thread count, and render a window through the Navigator.
  util::TempDir dir;
  const std::string clog = dir.file("gen.clog2").string();
  const std::string slog = dir.file("gen.slog2").string();
  const std::string svg = dir.file("win.svg").string();

  std::string out;
  ASSERT_EQ(run_status(tool("pilot-tracegen") + " " + clog +
                           " --events=5000 --ranks=4 --seed=9", &out), 0)
      << out;
  EXPECT_NE(out.find("wrote"), std::string::npos);

  // Same seed reproduces the same bytes (tools-level determinism).
  const std::string clog2_path = dir.file("gen2.clog2").string();
  ASSERT_EQ(run_status(tool("pilot-tracegen") + " " + clog2_path +
                           " --events=5000 --ranks=4 --seed=9 --quiet", &out), 0);
  EXPECT_EQ(util::read_text_file(clog), util::read_text_file(clog2_path));

  ASSERT_EQ(run_status(tool("pilot-clog2toslog2") + " " + clog + " --out=" +
                           slog + " --threads=2 --quiet", &out), 0) << out;

  ASSERT_EQ(run_status(tool("pilot-jumpshot") + " " + slog +
                           " --windowed --out=" + svg, &out), 0) << out;
  EXPECT_NE(out.find("decoded"), std::string::npos) << out;
  EXPECT_NE(util::read_text_file(svg).find("<svg"), std::string::npos);

  // A 1-byte LOD budget forces the preview path: no frame decodes at all.
  ASSERT_EQ(run_status(tool("pilot-jumpshot") + " " + slog +
                           " --windowed --lod-budget=1 --out=" + svg, &out), 0)
      << out;
  EXPECT_NE(out.find("decoded 0 of"), std::string::npos) << out;
  EXPECT_NE(util::read_text_file(svg).find("preview-lod"), std::string::npos);
}

TEST(Tools, StreamedPrintersMatchLibraryText) {
  // clog2print/slog2print stream through a bounded buffer; their output must
  // stay exactly the library's to_text rendering.
  util::TempDir dir;
  make_trace(dir);
  const std::string clog = dir.file("pilot.clog2").string();
  const std::string slog = dir.file("pilot.slog2").string();
  ASSERT_EQ(run_status(tool("pilot-clog2toslog2") + " " + clog + " --quiet"), 0);

  std::string out;
  ASSERT_EQ(run_cmd(tool("pilot-clog2print") + " " + clog, &out), 0);
  EXPECT_EQ(out, clog2::to_text(clog2::read_file(clog)));

  ASSERT_EQ(run_cmd(tool("pilot-slog2print") + " " + slog + " --drawables", &out),
            0);
  EXPECT_EQ(out, slog2::to_text(slog2::read_file(slog), true));
}

TEST(Tools, BadInputsFailGracefully) {
  util::TempDir dir;
  util::write_file(dir.file("junk.clog2"), std::string("this is not a trace"));
  std::string out;
  EXPECT_NE(run_cmd(tool("pilot-clog2print") + " " + dir.file("junk.clog2").string(),
                    &out),
            0);
  EXPECT_NE(out.find("error"), std::string::npos);
  EXPECT_NE(run_cmd(tool("pilot-jumpshot") + " /nonexistent.slog2", &out), 0);
}

TEST(Tools, TruncatedTracesFailWithClearErrors) {
  util::TempDir dir;
  make_trace(dir);
  const std::string clog = dir.file("pilot.clog2").string();
  std::string out;
  ASSERT_EQ(run_cmd(tool("pilot-clog2toslog2") + " " + clog, &out), 0) << out;
  const std::string slog = dir.file("pilot.slog2").string();

  // Chop both files in half; the printers must name the file and fail.
  for (const std::string& path : {clog, slog}) {
    const std::string whole = util::read_text_file(path);
    ASSERT_GT(whole.size(), 16u);
    util::write_file(dir.file("cut" + std::filesystem::path(path).extension().string()),
                     whole.substr(0, whole.size() / 2));
  }
  EXPECT_EQ(run_status(tool("pilot-clog2print") + " " +
                           dir.file("cut.clog2").string(), &out), 1);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  EXPECT_NE(out.find("cut.clog2"), std::string::npos) << out;

  EXPECT_EQ(run_status(tool("pilot-slog2print") + " " +
                           dir.file("cut.slog2").string(), &out), 1);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
  EXPECT_NE(out.find("cut.slog2"), std::string::npos) << out;
}

TEST(Tools, TraceCheckEndToEnd) {
  namespace wc = workloads::collisions;
  util::TempDir dir_a;
  util::TempDir dir_fixed;

  wc::AppConfig cfg;
  cfg.workers = 3;
  cfg.records = 5000;
  cfg.query_rounds = 3;
  cfg.costs.parse_per_byte = 0;  // TC202 is structural; no timing needed
  cfg.costs.query_per_record = 0;
  cfg.variant = wc::Variant::kInstanceA;
  cfg.pilot_args = {"-piwatchdog=30", "-pisvc=j",
                    "-piout=" + dir_a.path().string()};
  ASSERT_FALSE(wc::run_app(cfg).run.aborted);
  cfg.variant = wc::Variant::kFixed;
  cfg.pilot_args.back() = "-piout=" + dir_fixed.path().string();
  ASSERT_FALSE(wc::run_app(cfg).run.aborted);

  // Instance A: findings -> exit 1, TC202 named in the text report.
  std::string out;
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " " +
                           dir_a.file("pilot.clog2").string(), &out), 1);
  EXPECT_NE(out.find("TC202"), std::string::npos) << out;
  EXPECT_NE(out.find("finding(s)"), std::string::npos) << out;

  // --json mode emits the same findings machine-readably.
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --json " +
                           dir_a.file("pilot.clog2").string(), &out), 1);
  EXPECT_NE(out.find("\"id\": \"TC202\""), std::string::npos) << out;

  // The fixed variant is clean -> exit 0. A generous --min-stall keeps
  // scheduler noise on loaded machines out of this exit-code check.
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --min-stall=0.5 " +
                           dir_fixed.file("pilot.clog2").string(), &out), 0)
      << out;
  EXPECT_NE(out.find("0 finding(s)"), std::string::npos) << out;

  // Usage and input errors -> exit 2.
  EXPECT_EQ(run_status(tool("pilot-tracecheck"), &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --bogus " +
                           dir_a.file("pilot.clog2").string(), &out), 2);
  EXPECT_NE(out.find("unknown option"), std::string::npos) << out;
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " /nonexistent.clog2", &out), 2);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
}

TEST(Tools, TraceCheckJsonReportShape) {
  const std::string messy = std::string(PILOT_FIXTURE_DIR) + "/messy.clog2";
  std::string out;
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --json " + messy, &out), 1);
  // One wrapping object with verdict + counts + implicated ranks, findings
  // still one per line for line-oriented consumers.
  EXPECT_NE(out.find("\"tool\": \"pilot-tracecheck\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"verdict\": \"error\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ranks\": [0, 1, 2]"), std::string::npos) << out;
  EXPECT_NE(out.find("\"id\": \"TC301\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"findings\": ["), std::string::npos) << out;
}

TEST(Tools, TraceDiffEndToEnd) {
  const std::string fx = std::string(PILOT_FIXTURE_DIR);
  const std::string a = fx + "/diffpair.a.clog2";
  const std::string b = fx + "/diffpair.b.clog2";
  std::string out;

  // Identical traces: exit 0, says so.
  EXPECT_EQ(run_status(tool("pilot-tracediff") + " " + a + " " + a, &out), 0);
  EXPECT_NE(out.find("identical"), std::string::npos) << out;

  // The golden pair: exit 1 and byte-for-byte the checked-in diagnostics.
  EXPECT_EQ(run_status(tool("pilot-tracediff") + " " + a + " " + b, &out), 1);
  const std::string golden =
      util::read_text_file(fx + "/diffpair.tracediff.txt");
  EXPECT_EQ(out.substr(0, golden.size()), golden) << out;
  EXPECT_NE(out.find("structural-divergence"), std::string::npos) << out;

  // JSON mode carries the verdict and the ranked suspect.
  EXPECT_EQ(
      run_status(tool("pilot-tracediff") + " --json " + a + " " + b, &out), 1);
  EXPECT_NE(out.find("\"verdict\": \"structural-divergence\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"id\": \"TD301\""), std::string::npos) << out;

  // N-way: reference vs. two suspects, one clean, one diverged.
  EXPECT_EQ(run_status(tool("pilot-tracediff") + " " + a + " " + a + " " + b,
                       &out),
            1);
  EXPECT_NE(out.find("identical"), std::string::npos) << out;
  EXPECT_NE(out.find("TD102"), std::string::npos) << out;

  // Usage and input errors -> exit 2.
  EXPECT_EQ(run_status(tool("pilot-tracediff") + " " + a, &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  EXPECT_EQ(run_status(tool("pilot-tracediff") + " " + a + " /nope.clog2",
                       &out),
            2);
}

TEST(Tools, TraceCheckSilentOnCleanLab2Trace) {
  util::TempDir dir;
  std::string out;
  ASSERT_EQ(run_status(example("lab2") + " -pisvc=j -piout=" +
                           dir.path().string(), &out), 0) << out;
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " " +
                           dir.file("pilot.clog2").string(), &out), 0) << out;
  EXPECT_NE(out.find("0 finding(s)"), std::string::npos) << out;
}

TEST(Tools, PilintCleanExampleExitsZero) {
  std::string out;
  EXPECT_EQ(run_status(example("quickstart") + " -pilint", &out), 0) << out;
  // It linted and exited before the execution phase — no program output.
  EXPECT_NE(out.find("pilot-lint"), std::string::npos) << out;
  EXPECT_EQ(out.find("CSP"), std::string::npos) << out;
}

TEST(Tools, PilintFlagsSmellyExample) {
  std::string out;
  EXPECT_EQ(run_status(example("lint_demo") + " -pilint -picheck=0", &out), 1)
      << out;
  EXPECT_NE(out.find("PL01"), std::string::npos) << out;  // self-loop channel
  EXPECT_NE(out.find("PL02"), std::string::npos) << out;  // isolated process
}

int salvage_abort_worker(int, void*) {
  int v = 0;
  PI_Read(g_to_worker, "%d", &v);
  PI_Abort(3, "crash for salvage test");
  return 0;
}

TEST(Tools, LogSalvageAfterAbort) {
  util::TempDir dir;
  const auto res = pilot::run(
      {"prog", "-pisvc=j", "-pirobust", "-piout=" + dir.path().string(),
       "-piwatchdog=30"},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(salvage_abort_worker, 0, nullptr);
        g_to_worker = PI_CreateChannel(PI_MAIN, w);
        g_from_worker = PI_CreateChannel(w, PI_MAIN);
        PI_StartAll();
        PI_Write(g_to_worker, "%d", 1);
        int v = 0;
        PI_Read(g_from_worker, "%d", &v);  // abort wakes us
        PI_StopMain(0);
        return 0;
      });
  ASSERT_TRUE(res.aborted);

  std::string out;
  const std::string base = (dir.path() / "pilot").string();
  ASSERT_EQ(run_cmd(tool("pilot-logsalvage") + " " + base, &out), 0) << out;
  EXPECT_NE(out.find("salvaged"), std::string::npos);
  ASSERT_EQ(run_cmd(tool("pilot-clog2print") + " " + base + ".salvaged.clog2", &out),
            0);
  EXPECT_NE(out.find("PI_Write"), std::string::npos);
}

// --- record/replay (-pirecord / -pireplay, pilot-replayprint) ----------------

/// The lines of a tracecheck --json report whose finding has the given ID.
std::vector<std::string> json_findings(const std::string& json,
                                       const std::string& id) {
  std::vector<std::string> hits;
  std::size_t pos = 0;
  while ((pos = json.find('\n', pos)) != std::string::npos) {
    const std::size_t end = json.find('\n', pos + 1);
    const std::string line = json.substr(pos + 1, end - pos - 1);
    if (line.find("\"id\": \"" + id + "\"") != std::string::npos)
      hits.push_back(line);
    pos += 1;
  }
  return hits;
}

TEST(Tools, ReplayReproducesInstanceABugIdentically) {
  util::TempDir dir;
  const std::string prl = dir.file("run.prl").string();
  const std::string base = example("collision_query") +
      " --variant=a --workers=3 --records=5000 --rounds=3"
      " -pisvc=cj -piwatchdog=30 -piout=" + dir.path().string();

  std::string out;
  ASSERT_EQ(run_status(base + " -piname=rec -pirecord=" + prl, &out), 0) << out;

  // Three replays of the buggy run: identical CLOG-2 event orderings
  // (timestamps excluded) and the identical TC202 serialized-fan-in finding.
  std::vector<std::string> fingerprints;
  std::vector<std::vector<std::string>> tc202;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "rep" + std::to_string(i);
    ASSERT_EQ(run_status(base + " -piname=" + name + " -pireplay=" + prl, &out),
              0) << out;
    const std::string clog = dir.file(name + ".clog2").string();
    fingerprints.push_back(
        replay::trace_fingerprint(clog2::read_file(clog)));
    EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --json " + clog, &out), 1);
    tc202.push_back(json_findings(out, "TC202"));
    EXPECT_FALSE(tc202.back().empty()) << out;
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[1], fingerprints[2]);
  EXPECT_EQ(tc202[0], tc202[1]);
  EXPECT_EQ(tc202[1], tc202[2]);
}

TEST(Tools, ReplayPrintDumpsAndRejectsCorruptInput) {
  util::TempDir dir;
  const std::string prl = dir.file("farm.prl").string();
  std::string out;
  ASSERT_EQ(run_status(example("select_farm") + " -piout=" + dir.path().string() +
                           " -pirecord=" + prl, &out), 0) << out;

  ASSERT_EQ(run_status(tool("pilot-replayprint") + " " + prl, &out), 0) << out;
  EXPECT_NE(out.find("select"), std::string::npos);
  EXPECT_NE(out.find("rank"), std::string::npos);

  // Usage -> 2; unreadable/corrupt input -> 1 (like clog2print/slog2print).
  EXPECT_EQ(run_status(tool("pilot-replayprint"), &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  EXPECT_EQ(run_status(tool("pilot-replayprint") + " /nonexistent.prl", &out), 1);
  EXPECT_NE(out.find("error"), std::string::npos) << out;

  const auto bytes = util::read_file(prl);
  ASSERT_GT(bytes.size(), 8u);
  const auto cut = dir.file("cut.prl");
  util::write_file(cut, std::vector<std::uint8_t>(bytes.begin(),
                                                  bytes.end() - 5));
  EXPECT_EQ(run_status(tool("pilot-replayprint") + " " + cut.string(), &out), 1);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
}

TEST(Tools, TraceCheckReplayCrossCheck) {
  util::TempDir dir;
  const std::string prl = dir.file("farm.prl").string();
  std::string out;
  ASSERT_EQ(run_status(example("select_farm") + " -pisvc=cj -piout=" +
                           dir.path().string() + " -pirecord=" + prl, &out), 0)
      << out;
  const std::string clog = dir.file("pilot.clog2").string();

  // A trace checked against its own log agrees.
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --replay=" + prl + " " +
                           clog, &out), 0) << out;
  EXPECT_NE(out.find("0 finding(s)"), std::string::npos) << out;

  // Tamper with one recorded select branch: the cross-check flags RP22.
  replay::Log log = replay::read_file(prl);
  bool flipped = false;
  for (auto& events : log.per_rank) {
    for (auto& e : events)
      if (e.kind == replay::EventKind::kSelect) {
        e.b = e.b == 0 ? 1 : 0;
        flipped = true;
        break;
      }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped);
  const auto tampered = dir.file("tampered.prl");
  replay::write_file(tampered, log);
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --replay=" +
                           tampered.string() + " " + clog, &out), 1) << out;
  EXPECT_NE(out.find("RP22"), std::string::npos) << out;

  // Unreadable replay log -> usage/input error.
  EXPECT_EQ(run_status(tool("pilot-tracecheck") + " --replay=/nonexistent.prl " +
                           clog, &out), 2);
  EXPECT_NE(out.find("error"), std::string::npos) << out;
}

TEST(Tools, TracedLiveIngestMatchesOfflinePipeline) {
  // The streaming pipeline end-to-end through the real binaries:
  // pilot-tracegen --stream paces a CLOG-2 byte stream into a FIFO that
  // pilot-traced ingests as a live session; a protocol client watches the
  // session fill, renders mid-run, and finalizes — and the finalized
  // SLOG-2 file, its jumpshot render, and the tracecheck verdict must all
  // match the offline pilot-clog2toslog2 pipeline over the same trace.
  util::TempDir dir;
  const std::string fifo = dir.file("in.fifo").string();
  const std::string sock = dir.file("d.sock").string();
  const std::string off_clog = dir.file("off.clog2").string();
  const std::string off_slog = dir.file("off.slog2").string();
  const std::string live_slog = dir.file("live.slog2").string();
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0) << std::strerror(errno);

  // Offline reference: tracegen is seed-deterministic, so this file holds
  // the exact bytes the --stream run below will emit.
  const std::string gen_args = " --events=4000 --ranks=4 --seed=33 --quiet";
  std::string out;
  ASSERT_EQ(run_status(tool("pilot-tracegen") + " " + off_clog + gen_args, &out),
            0) << out;
  ASSERT_EQ(run_status(tool("pilot-clog2toslog2") + " " + off_clog + " --out=" +
                           off_slog + " --threads=2 --quiet", &out), 0) << out;

  // Daemon with the FIFO attached as session "run1"; a tight disorder
  // bound (tracegen streams are sorted) keeps the live view current.
  std::thread daemon([&] {
    run_cmd(tool("pilot-traced") + " --socket=" + sock + " --ingest=run1:" +
            fifo + " --workers=2 --disorder=0.000001 --quiet");
  });
  // Paced streamer: ~2000 records/s makes the run last about two seconds,
  // long enough to observe the session mid-stream.
  std::thread streamer([&] {
    run_cmd(tool("pilot-tracegen") + " " + fifo + gen_args + " --stream=2000");
  });

  util::UnixConn conn;
  for (int i = 0; i < 100 && !conn.valid(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    try {
      conn = util::UnixConn::connect_to(sock);
    } catch (const util::Error&) {
    }
  }
  ASSERT_TRUE(conn.valid()) << "pilot-traced never opened its socket";

  auto request = [&](const std::string& line) {
    conn.write_line(line);
    std::string resp;
    EXPECT_TRUE(conn.read_line(&resp)) << "daemon hung up on: " << line;
    return traced::JsonObject::parse(resp);
  };

  ASSERT_TRUE(request(R"({"op":"ping"})").boolean("ok"));

  // Wait until ingest has visibly started, then render mid-run.
  bool saw_live = false;
  for (int i = 0; i < 100 && !saw_live; ++i) {
    const auto st = request(R"({"op":"status","session":"run1"})");
    if (st.boolean("ok") && st.num_or("records", 0) > 0 &&
        st.str("phase") == "open")
      saw_live = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(saw_live) << "never observed the session mid-stream";
  const auto mid = request(R"({"op":"render","session":"run1","width":640})");
  ASSERT_TRUE(mid.boolean("ok"));
  EXPECT_NE(mid.str("svg").find("<svg"), std::string::npos);
  EXPECT_TRUE(request(R"({"op":"query","session":"run1","kind":"legend"})")
                  .boolean("ok"));

  // Wait for the writer to close the FIFO and the stream to complete.
  std::string phase;
  for (int i = 0; i < 300 && phase != "complete"; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    phase = request(R"({"op":"status","session":"run1","sync":true})").str("phase");
  }
  ASSERT_EQ(phase, "complete") << "stream never completed";

  // Finalize: byte-identical to the offline converter (defaults match
  // pilot-clog2toslog2's; thread count provably does not affect bytes).
  const auto fin = request(traced::JsonWriter()
                               .field("op", "finalize")
                               .field("session", "run1")
                               .field("out", live_slog)
                               .done());
  ASSERT_TRUE(fin.boolean("ok"));
  EXPECT_EQ(util::read_file(live_slog), util::read_file(off_slog));

  ASSERT_TRUE(request(R"({"op":"shutdown"})").boolean("ok"));
  conn.close();
  daemon.join();
  streamer.join();

  // Downstream agreement: identical renders and tracecheck verdicts.
  const std::string svg_live = dir.file("live.svg").string();
  const std::string svg_off = dir.file("off.svg").string();
  // Fixed --title: jumpshot otherwise embeds the (differing) input path.
  ASSERT_EQ(run_status(tool("pilot-jumpshot") + " " + live_slog +
                           " --title=run --out=" + svg_live, &out), 0) << out;
  ASSERT_EQ(run_status(tool("pilot-jumpshot") + " " + off_slog +
                           " --title=run --out=" + svg_off, &out), 0) << out;
  EXPECT_EQ(util::read_text_file(svg_live), util::read_text_file(svg_off));

  // The streamed bytes ARE off_clog (seed determinism), so tracecheck's
  // verdict on it is the verdict for the ingested trace; pin that it runs
  // and is deterministic across two invocations.
  std::string verdict1, verdict2;
  const int rc1 = run_status(tool("pilot-tracecheck") + " --json " + off_clog,
                             &verdict1);
  const int rc2 = run_status(tool("pilot-tracecheck") + " --json " + off_clog,
                             &verdict2);
  EXPECT_LE(rc1, 1);
  EXPECT_EQ(rc1, rc2);
  EXPECT_EQ(verdict1, verdict2);
}

TEST(Tools, TracedigestEndToEndOnV2) {
  // The summary pipeline as a user runs it: synthesize, convert with the
  // columnar v2 frames, digest. The digest must be deterministic at the
  // binary level and honor its byte budget exactly.
  util::TempDir dir;
  const std::string clog = dir.file("gen.clog2").string();
  const std::string slog = dir.file("gen.slog2").string();
  std::string out;
  ASSERT_EQ(run_status(tool("pilot-tracegen") + " " + clog +
                           " --events=20000 --ranks=8 --seed=5 --quiet", &out), 0)
      << out;
  ASSERT_EQ(run_status(tool("pilot-clog2toslog2") + " " + clog + " --out=" + slog +
                           " --frame-encoding=v2 --quiet", &out), 0)
      << out;

  std::string digest1, digest2;
  ASSERT_EQ(run_status(tool("pilot-tracedigest") + " " + slog + " --budget=2048",
                       &digest1), 0) << digest1;
  EXPECT_LE(digest1.size(), 2048U);
  EXPECT_NE(digest1.find("v2 payloads"), std::string::npos) << digest1;
  EXPECT_NE(digest1.find("ranks:"), std::string::npos) << digest1;
  ASSERT_EQ(run_status(tool("pilot-tracedigest") + " " + slog + " --budget=2048",
                       &digest2), 0);
  EXPECT_EQ(digest1, digest2) << "digest is not deterministic";

  std::string json;
  ASSERT_EQ(run_status(tool("pilot-tracedigest") + " " + slog +
                           " --json --budget=600", &json), 0) << json;
  EXPECT_LE(json.size(), 600U);
  EXPECT_EQ(json.front(), '{') << json;

  // Unknown flags are rejected loudly, not ignored.
  EXPECT_NE(run_status(tool("pilot-tracedigest") + " " + slog + " --bogus=1",
                       &out), 0);
}

constexpr int kDigestWorkers = 3;
constexpr int kDigestRounds = 12;
PI_CHANNEL* g_dig_to[kDigestWorkers];
PI_CHANNEL* g_dig_from[kDigestWorkers];

int digest_farm_worker(int index, void*) {
  for (int r = 0; r < kDigestRounds; ++r) {
    int base = 0;
    PI_Read(g_dig_to[index], "%d", &base);
    PI_Write(g_dig_from[index], "%d", base * 2);
  }
  return 0;
}

TEST(Tools, TracedigestSurfacesInjectedDelayFault) {
  // A targeted delay= fault plan on one worker of a deterministic farm (the
  // tasks substrate makes the injected jitter exact virtual time) must show
  // up in the digest's anomaly section naming the victim rank.
  util::TempDir dir;
  constexpr int kVictim = 2;
  const auto res = pilot::run(
      {"prog", "-piexec=tasks", "-pisvc=j", "-piwatchdog=30",
       "-piout=" + dir.path().string(), "-piname=delayed",
       util::strprintf("-pifault=seed=7;delay=1:5@%d", kVictim)},
      [](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        for (int i = 0; i < kDigestWorkers; ++i) {
          PI_PROCESS* w = PI_CreateProcess(digest_farm_worker, i, nullptr);
          g_dig_to[i] = PI_CreateChannel(PI_MAIN, w);
          g_dig_from[i] = PI_CreateChannel(w, PI_MAIN);
        }
        PI_StartAll();
        for (int r = 0; r < kDigestRounds; ++r) {
          for (int i = 0; i < kDigestWorkers; ++i)
            PI_Write(g_dig_to[i], "%d", r * 10 + i);
          for (int i = 0; i < kDigestWorkers; ++i) {
            int v = 0;
            PI_Read(g_dig_from[i], "%d", &v);
          }
        }
        PI_StopMain(0);
        return 0;
      });
  ASSERT_FALSE(res.aborted);

  const std::string slog = dir.file("delayed.slog2").string();
  std::string out;
  // Exit 3 = converted with warnings (a faulted run is rarely "clean");
  // anything else is a real failure.
  const int conv_rc = run_status(
      tool("pilot-clog2toslog2") + " " + dir.file("delayed.clog2").string() +
          " --out=" + slog + " --frame-encoding=v2 --quiet", &out);
  ASSERT_TRUE(conv_rc == 0 || conv_rc == 3) << conv_rc << "\n" << out;
  std::string digest;
  ASSERT_EQ(run_status(tool("pilot-tracedigest") + " " + slog + " --budget=8192",
                       &digest), 0) << digest;

  // Extract the anomaly section and look for the victim inside it.
  const std::size_t anom = digest.find("anomalies (");
  ASSERT_NE(anom, std::string::npos) << digest;
  const std::size_t ranks = digest.find("ranks:", anom);
  ASSERT_NE(ranks, std::string::npos) << digest;
  const std::string section = digest.substr(anom, ranks - anom);
  const std::string victim = util::strprintf("rank %d ", kVictim);
  const std::string victim_edge_in = util::strprintf("->%d ", kVictim);
  const std::string victim_edge_out = util::strprintf("edge %d->", kVictim);
  EXPECT_TRUE(section.find(victim) != std::string::npos ||
              section.find(victim_edge_in) != std::string::npos ||
              section.find(victim_edge_out) != std::string::npos)
      << "victim rank " << kVictim << " absent from anomaly section:\n"
      << digest;
}

}  // namespace

// traced: online conversion byte-identity, streaming reader semantics,
// session management, and the NDJSON service — the pilot-traced subsystem.
//
// The load-bearing property is pinned in OnlineMatchesOffline*: feeding a
// CLOG-2 byte stream through clog2::StreamReader + traced::OnlineConverter
// in ANY chunking and finalizing must produce the same serialized SLOG-2
// bytes (and the same warning list) as the offline slog2::convert on the
// parsed file. TracedScale repeats this at 10^6 events (see also
// pipeline_scale_test for the offline pipeline at that size).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clog2/clog2.hpp"
#include "query/slog2_rollup.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"
#include "traced/online_convert.hpp"
#include "traced/protocol.hpp"
#include "traced/service.hpp"
#include "traced/session.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(PILOT_FIXTURE_DIR) / name;
}

// Drive a StreamReader + OnlineConverter over `bytes` in fixed-size
// chunks, exactly the way Session::feed does.
slog2::File online_convert(const std::vector<std::uint8_t>& bytes,
                           std::size_t chunk, const traced::OnlineOptions& oo,
                           std::vector<std::string>* warnings = nullptr,
                           traced::OnlineUsage* usage_out = nullptr) {
  clog2::StreamReader reader;
  traced::OnlineConverter conv(oo);
  bool begun = false;
  clog2::Record rec;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    reader.feed(bytes.data() + off, n);
    for (;;) {
      const auto st = reader.next(&rec);
      if (reader.header_done() && !begun) {
        conv.begin(reader.nranks());
        begun = true;
      }
      if (st != clog2::StreamReader::Status::kRecord) break;
      conv.push(rec);
    }
  }
  EXPECT_TRUE(reader.finished()) << "stream did not reach the end-of-log marker";
  if (usage_out != nullptr) *usage_out = conv.usage();
  return conv.finalize(warnings);
}

void expect_online_matches_offline(const std::vector<std::uint8_t>& bytes,
                                   const std::vector<std::size_t>& chunks,
                                   const traced::OnlineOptions& oo,
                                   const std::string& label) {
  const clog2::File parsed = clog2::parse(bytes);
  slog2::ConvertOptions co = oo.convert;
  std::vector<std::string> offline_warnings;
  const slog2::File offline = slog2::convert(parsed, co, &offline_warnings);
  const std::vector<std::uint8_t> offline_bytes = slog2::serialize(offline);
  for (const std::size_t chunk : chunks) {
    std::vector<std::string> online_warnings;
    const slog2::File online = online_convert(bytes, chunk, oo, &online_warnings);
    EXPECT_EQ(slog2::serialize(online), offline_bytes)
        << label << ": byte mismatch at chunk size " << chunk;
    EXPECT_EQ(online_warnings, offline_warnings)
        << label << ": warning mismatch at chunk size " << chunk;
  }
}

std::vector<std::uint8_t> tracegen_bytes(std::uint64_t events, std::int32_t ranks,
                                         std::uint64_t seed = 1) {
  tracegen::Options o;
  o.events = events;
  o.nranks = ranks;
  o.seed = seed;
  return clog2::serialize(tracegen::generate(o));
}

TEST(Traced, OnlineMatchesOfflineOnGoldenFixtures) {
  const std::vector<std::size_t> chunks = {1, 3, 17, 256, 1 << 20};
  for (const char* name :
       {"tiny.clog2", "messy.clog2", "diffpair.a.clog2", "diffpair.b.clog2"}) {
    const auto bytes = util::read_file(fixture(name));
    traced::OnlineOptions oo;
    oo.convert.threads = 2;
    expect_online_matches_offline(bytes, chunks, oo, name);
  }
}

TEST(Traced, OnlineMatchesOfflineOnTracegen) {
  const auto bytes = tracegen_bytes(5000, 6, 7);
  traced::OnlineOptions oo;
  oo.convert.threads = 2;
  oo.seal_bytes = 8 * 1024;  // force many sealed chunks
  expect_online_matches_offline(bytes, {1, 13, 4097, bytes.size()}, oo, "tracegen");
}

TEST(Traced, OnlineMatchesOfflineWithSpillDir) {
  util::TempDir tmp("traced");
  const auto bytes = tracegen_bytes(20000, 8, 3);
  traced::OnlineOptions oo;
  oo.convert.threads = 3;
  oo.seal_bytes = 4 * 1024;
  // tracegen emits a time-sorted stream spanning a few ms; the default
  // 50ms reorder window would hold the whole trace pending and nothing
  // would seal. A tight bound drives the steady-state admit/seal path.
  oo.max_disorder = 1e-6;
  oo.spill_dir = tmp.file("spill");
  std::vector<std::string> warnings;
  traced::OnlineUsage usage;
  const slog2::File online = online_convert(bytes, 4096, oo, &warnings, &usage);
  EXPECT_GT(usage.sealed_chunks, 4U) << "seal_bytes did not trigger sealing";
  EXPECT_GT(usage.sealed_bytes, 0U);
  // Bounded memory: the live working set must stay far below the sealed
  // total once sealing kicks in.
  EXPECT_LT(usage.peak_live_bytes, usage.sealed_bytes + 256 * 1024);
  const clog2::File parsed = clog2::parse(bytes);
  slog2::ConvertOptions co = oo.convert;
  const slog2::File offline = slog2::convert(parsed, co);
  EXPECT_EQ(slog2::serialize(online), slog2::serialize(offline));
}

TEST(Traced, OnlineNonDefaultFrameOptions) {
  const auto bytes = tracegen_bytes(3000, 4, 11);
  traced::OnlineOptions oo;
  oo.convert.frame_size = 2048;
  oo.convert.max_depth = 6;
  oo.convert.preview_buckets = 16;
  oo.convert.threads = 2;
  expect_online_matches_offline(bytes, {97, bytes.size()}, oo, "small frames");
}

TEST(Traced, StreamReaderReportsNeedMoreDataOnEveryPrefix) {
  const auto bytes = util::read_file(fixture("tiny.clog2"));
  // Any strict prefix is "incomplete", never "corrupt": feeding it must
  // yield records then kNeedMoreData, and completing the stream afterwards
  // must finish cleanly with the full record count.
  const clog2::File parsed = clog2::parse(bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    clog2::StreamReader reader;
    reader.feed(bytes.data(), cut);
    clog2::Record rec;
    std::uint64_t seen = 0;
    for (;;) {
      const auto st = reader.next(&rec);
      if (st == clog2::StreamReader::Status::kRecord) {
        ++seen;
        continue;
      }
      ASSERT_NE(st, clog2::StreamReader::Status::kEnd) << "prefix " << cut;
      break;  // kNeedMoreData — the only legal terminal state for a prefix
    }
    EXPECT_FALSE(reader.finished());
    reader.feed(bytes.data() + cut, bytes.size() - cut);
    for (;;) {
      const auto st = reader.next(&rec);
      if (st == clog2::StreamReader::Status::kRecord) {
        ++seen;
        continue;
      }
      ASSERT_EQ(st, clog2::StreamReader::Status::kEnd) << "prefix " << cut;
      break;
    }
    EXPECT_TRUE(reader.finished());
    EXPECT_EQ(seen, parsed.records.size());
  }
}

TEST(Traced, StreamReaderAgreesWithParseOnCorruption) {
  // Flip one byte at a spread of offsets; the streaming reader must accept
  // exactly the files parse() accepts (the fuzz-suite verdict contract).
  const auto clean = util::read_file(fixture("messy.clog2"));
  for (std::size_t off = 0; off < clean.size();
       off += std::max<std::size_t>(1, clean.size() / 23)) {
    auto bytes = clean;
    bytes[off] ^= 0xFF;
    bool parse_ok = true;
    try {
      const clog2::File f = clog2::parse(bytes);
      (void)f;
    } catch (const util::IoError&) {
      parse_ok = false;
    }
    bool stream_ok = true;
    try {
      clog2::StreamReader reader;
      reader.feed(bytes.data(), bytes.size());
      clog2::Record rec;
      while (reader.next(&rec) == clog2::StreamReader::Status::kRecord) {
      }
      stream_ok = reader.finished();  // stuck at kNeedMoreData = incomplete
    } catch (const util::IoError&) {
      stream_ok = false;
    }
    EXPECT_EQ(stream_ok, parse_ok) << "verdict mismatch at flipped offset " << off;
  }
}

TEST(Traced, StreamReaderRejectsTrailingGarbage) {
  auto bytes = util::read_file(fixture("tiny.clog2"));
  clog2::StreamReader reader;
  reader.feed(bytes.data(), bytes.size());
  clog2::Record rec;
  while (reader.next(&rec) == clog2::StreamReader::Status::kRecord) {
  }
  EXPECT_TRUE(reader.finished());
  const std::uint8_t junk = 0x42;
  EXPECT_THROW(reader.feed(&junk, 1), util::IoError);
}

TEST(Traced, OnlineRejectsExcessDisorder) {
  traced::OnlineOptions oo;
  oo.max_disorder = 0.01;
  traced::OnlineConverter conv(oo);
  conv.begin(2);
  conv.push(clog2::EventDef{1, "ping", "green", ""});
  conv.push(clog2::EventRec{1.000, 0, 1, ""});
  conv.push(clog2::EventRec{2.000, 1, 1, ""});
  // 0.5s behind a 2.0s watermark with a 10ms bound: hard error.
  EXPECT_THROW(conv.push(clog2::EventRec{1.500, 0, 1, ""}), util::IoError);
}

TEST(Traced, OnlineRejectsLateDefinitions) {
  traced::OnlineConverter conv{traced::OnlineOptions{}};
  conv.begin(1);
  conv.push(clog2::EventDef{1, "ping", "green", ""});
  conv.push(clog2::EventRec{0.5, 0, 1, ""});
  EXPECT_THROW(conv.push(clog2::EventDef{2, "late", "red", ""}), util::IoError);
}

TEST(Traced, QueryOnLiveSessionEqualsOfflinePrefix) {
  const auto bytes = tracegen_bytes(4000, 4, 5);
  const clog2::File parsed = clog2::parse(bytes);

  traced::OnlineOptions oo;
  oo.seal_bytes = 16 * 1024;
  oo.max_disorder = 1e-6;  // tracegen streams are sorted; admit eagerly
  traced::Session session("live", oo);
  // Feed in mid-size chunks but do NOT finalize: the query below runs
  // against the still-open session.
  for (std::size_t off = 0; off < bytes.size(); off += 1024)
    session.feed(bytes.data() + off, std::min<std::size_t>(1024, bytes.size() - off));
  ASSERT_EQ(session.status().phase, traced::SessionPhase::kComplete);

  double frontier = 0.0;
  query::LegendSweep live;
  session.with_converter([&](traced::OnlineConverter& conv) {
    frontier = conv.admitted_frontier();
    conv.visit_window(
        -1e300, 1e300,
        [&](const slog2::StateDrawable& s) { live.add_state(s); },
        [&](const slog2::EventDrawable& e) { live.add_event(e); },
        [&](const slog2::ArrowDrawable& a) { live.add_arrow(a); });
  });

  // Post-mortem reference: offline-convert the full trace, then keep only
  // drawables whose *commit instant* (state end, event time, later arrow
  // half) lies strictly before the live frontier — the exact set the
  // online converter had admitted.
  const slog2::File offline = slog2::convert(parsed, oo.convert);
  query::LegendSweep ref;
  offline.visit_window(
      -1e300, 1e300,
      [&](const slog2::StateDrawable& s) {
        if (s.end_time < frontier) ref.add_state(s);
      },
      [&](const slog2::EventDrawable& e) {
        if (e.time < frontier) ref.add_event(e);
      },
      [&](const slog2::ArrowDrawable& a) {
        if (std::max(a.start_time, a.end_time) < frontier) ref.add_arrow(a);
      });

  const auto live_tot = live.totals();
  const auto ref_tot = ref.totals();
  ASSERT_EQ(live_tot.size(), ref_tot.size());
  for (const auto& [cat, tot] : ref_tot) {
    ASSERT_TRUE(live_tot.count(cat) != 0) << "category " << cat;
    EXPECT_EQ(live_tot.at(cat).count, tot.count) << "category " << cat;
    EXPECT_DOUBLE_EQ(live_tot.at(cat).inclusive, tot.inclusive);
    EXPECT_DOUBLE_EQ(live_tot.at(cat).exclusive, tot.exclusive);
  }
}

TEST(Traced, MultiSessionIsolationThroughPool) {
  // Two sessions with different seeds interleaved chunk-by-chunk through
  // the shared pool: each must finalize to its own offline reference.
  const auto bytes_a = tracegen_bytes(2000, 3, 21);
  const auto bytes_b = tracegen_bytes(2000, 5, 22);
  traced::OnlineOptions oo;
  traced::SessionManager mgr;
  traced::IngestPool pool(3);
  auto sa = mgr.open("a", oo);
  auto sb = mgr.open("b", oo);
  const std::size_t chunk = 512;
  for (std::size_t off = 0; off < std::max(bytes_a.size(), bytes_b.size());
       off += chunk) {
    if (off < bytes_a.size())
      pool.submit(sa, {bytes_a.begin() + static_cast<std::ptrdiff_t>(off),
                       bytes_a.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(off + chunk, bytes_a.size()))});
    if (off < bytes_b.size())
      pool.submit(sb, {bytes_b.begin() + static_cast<std::ptrdiff_t>(off),
                       bytes_b.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(off + chunk, bytes_b.size()))});
  }
  pool.drain();
  ASSERT_EQ(sa->status().phase, traced::SessionPhase::kComplete);
  ASSERT_EQ(sb->status().phase, traced::SessionPhase::kComplete);

  auto finalize_bytes = [](const std::shared_ptr<traced::Session>& s) {
    std::vector<std::uint8_t> out;
    s->finalize(nullptr,
                [&](slog2::File& f) { out = slog2::serialize(f); });
    return out;
  };
  EXPECT_EQ(finalize_bytes(sa),
            slog2::serialize(slog2::convert(clog2::parse(bytes_a), oo.convert)));
  EXPECT_EQ(finalize_bytes(sb),
            slog2::serialize(slog2::convert(clog2::parse(bytes_b), oo.convert)));
}

TEST(Traced, ConcurrentSessionsStressPool) {
  // The TSan target: 8 sessions fed from 8 producer threads through a
  // 4-worker pool while a reader thread polls status and runs live
  // queries. Every session must still finalize byte-identically.
  constexpr int kSessions = 8;
  std::vector<std::vector<std::uint8_t>> streams;
  streams.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i)
    streams.push_back(tracegen_bytes(1200, 2 + (i % 3), 100 + (unsigned)i));

  traced::OnlineOptions oo;
  oo.seal_bytes = 8 * 1024;
  traced::SessionManager mgr;
  traced::IngestPool pool(4);
  std::vector<std::shared_ptr<traced::Session>> sessions;
  sessions.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i)
    sessions.push_back(mgr.open("s" + std::to_string(i), oo));

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      for (auto& s : sessions) {
        const auto st = s->status();
        if (st.phase == traced::SessionPhase::kOpen && st.records > 0) {
          try {
            s->with_converter([](traced::OnlineConverter& conv) {
              query::LegendSweep sweep;
              conv.visit_window(
                  -1e300, 1e300,
                  [&](const slog2::StateDrawable& sd) { sweep.add_state(sd); },
                  nullptr, nullptr);
              (void)sweep.totals();
            });
          } catch (const util::Error&) {
            // header may not have arrived yet; that's fine
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    producers.emplace_back([&, i] {
      const auto& bytes = streams[static_cast<std::size_t>(i)];
      for (std::size_t off = 0; off < bytes.size(); off += 777) {
        const std::size_t n = std::min<std::size_t>(777, bytes.size() - off);
        pool.submit(sessions[static_cast<std::size_t>(i)],
                    {bytes.begin() + static_cast<std::ptrdiff_t>(off),
                     bytes.begin() + static_cast<std::ptrdiff_t>(off + n)});
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.drain();
  done.store(true);
  reader.join();

  for (int i = 0; i < kSessions; ++i) {
    const auto& bytes = streams[static_cast<std::size_t>(i)];
    std::vector<std::uint8_t> online_bytes;
    sessions[static_cast<std::size_t>(i)]->finalize(
        nullptr, [&](slog2::File& f) { online_bytes = slog2::serialize(f); });
    EXPECT_EQ(online_bytes,
              slog2::serialize(slog2::convert(clog2::parse(bytes), oo.convert)))
        << "session " << i;
  }
}

TEST(Traced, IdleSessionsAreEvicted) {
  traced::SessionManager mgr;
  auto s1 = mgr.open("old", traced::OnlineOptions{});
  auto s2 = mgr.open("fresh", traced::OnlineOptions{});
  s1->touch(10.0);
  s2->touch(100.0);
  const auto evicted = mgr.evict_idle(/*now=*/200.0, /*ttl=*/150.0);
  ASSERT_EQ(evicted.size(), 1U);
  EXPECT_EQ(evicted[0], "old");
  EXPECT_EQ(mgr.find("old"), nullptr);
  EXPECT_NE(mgr.find("fresh"), nullptr);
  // A shared_ptr held across eviction stays usable (no lifetime races).
  EXPECT_EQ(s1->name(), "old");
}

TEST(Traced, ProtocolJsonRoundTrip) {
  const std::string line = traced::JsonWriter()
                               .field("op", "open")
                               .field("session", "r\"un\n1")
                               .field("bytes", std::int64_t{42})
                               .field("rate", 0.25)
                               .field("live", true)
                               .done();
  const traced::JsonObject obj = traced::JsonObject::parse(line);
  EXPECT_EQ(obj.str("op"), "open");
  EXPECT_EQ(obj.str("session"), "r\"un\n1");
  EXPECT_EQ(obj.num("bytes"), 42);
  EXPECT_DOUBLE_EQ(obj.fnum("rate"), 0.25);
  EXPECT_TRUE(obj.boolean("live"));
  EXPECT_THROW(obj.str("missing"), util::IoError);
  EXPECT_THROW(traced::JsonObject::parse("{\"a\":{}}"), util::IoError);
  EXPECT_THROW(traced::JsonObject::parse("not json"), util::IoError);
  EXPECT_THROW(traced::JsonObject::parse("{\"a\":1,\"a\":2}"), util::IoError);
}

// In-process protocol driver: handle() with the feed payload delivered
// from a cursor over a byte vector, like a socket would.
class ProtoClient {
public:
  explicit ProtoClient(traced::Service& svc) : svc_(svc) {}

  traced::JsonObject request(const std::string& line,
                             const std::vector<std::uint8_t>& payload = {}) {
    std::size_t cursor = 0;
    const std::string resp = svc_.handle(line, [&](void* buf, std::size_t n) {
      if (cursor + n > payload.size()) return false;
      std::memcpy(buf, payload.data() + cursor, n);
      cursor += n;
      return true;
    });
    return traced::JsonObject::parse(resp);
  }

private:
  traced::Service& svc_;
};

TEST(Traced, ServiceEndToEndInProcess) {
  util::TempDir tmp("traced");
  const auto bytes = tracegen_bytes(3000, 4, 9);

  traced::ServiceOptions so;
  so.workers = 2;
  so.online.seal_bytes = 16 * 1024;
  so.online.max_disorder = 1e-6;  // sorted stream; admit eagerly
  so.online.spill_dir = tmp.file("spill");
  traced::Service svc(so);
  ProtoClient client(svc);

  auto ok = [](const traced::JsonObject& r) { return r.boolean("ok"); };

  EXPECT_TRUE(ok(client.request(R"({"op":"ping"})")));
  EXPECT_TRUE(ok(client.request(R"({"op":"open","session":"run1"})")));
  // Duplicate open is an error response, not an exception.
  EXPECT_FALSE(ok(client.request(R"({"op":"open","session":"run1"})")));

  // Feed in two halves.
  const std::size_t half = bytes.size() / 2;
  std::vector<std::uint8_t> first(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::uint8_t> second(bytes.begin() + static_cast<std::ptrdiff_t>(half),
                                   bytes.end());
  EXPECT_TRUE(ok(client.request(
      traced::JsonWriter()
          .field("op", "feed")
          .field("session", "run1")
          .field("bytes", static_cast<std::uint64_t>(first.size()))
          .done(),
      first)));

  // Mid-run: status and a live render on the first half only.
  auto st = client.request(R"({"op":"status","session":"run1","sync":true})");
  EXPECT_TRUE(ok(st));
  EXPECT_EQ(st.str("phase"), "open");
  EXPECT_GT(st.num("records"), 0);
  auto rr = client.request(R"({"op":"render","session":"run1","width":700})");
  ASSERT_TRUE(ok(rr));
  EXPECT_NE(rr.str("svg").find("<svg"), std::string::npos);

  EXPECT_TRUE(ok(client.request(
      traced::JsonWriter()
          .field("op", "feed")
          .field("session", "run1")
          .field("bytes", static_cast<std::uint64_t>(second.size()))
          .done(),
      second)));
  st = client.request(R"({"op":"status","session":"run1","sync":true})");
  EXPECT_EQ(st.str("phase"), "complete");

  // Live queries on the full stream.
  auto q = client.request(
      R"({"op":"query","session":"run1","kind":"legend","sync":true})");
  ASSERT_TRUE(ok(q));
  EXPECT_FALSE(q.str("result").empty());
  q = client.request(R"({"op":"query","session":"run1","kind":"edges"})");
  ASSERT_TRUE(ok(q));
  q = client.request(R"({"op":"query","session":"run1","kind":"occupancy"})");
  ASSERT_TRUE(ok(q));
  EXPECT_FALSE(ok(client.request(
      R"({"op":"query","session":"run1","kind":"bogus"})")));

  // Finalize to disk; must equal the offline conversion bit for bit.
  const std::filesystem::path out = tmp.file("run1.slog2");
  auto fin = client.request(traced::JsonWriter()
                                .field("op", "finalize")
                                .field("session", "run1")
                                .field("out", out.string())
                                .done());
  ASSERT_TRUE(ok(fin));
  const auto offline =
      slog2::serialize(slog2::convert(clog2::parse(bytes), so.online.convert));
  EXPECT_EQ(util::read_file(out), offline);

  // Sessions list + close + fake-clock sweep.
  auto ls = client.request(R"({"op":"sessions"})");
  EXPECT_EQ(ls.num("count"), 1);
  EXPECT_TRUE(ok(client.request(R"({"op":"close","session":"run1"})")));
  EXPECT_FALSE(ok(client.request(R"({"op":"status","session":"run1"})")));
  EXPECT_TRUE(ok(client.request(
      R"({"op":"open","session":"tmp","now":10})")));
  auto sw = client.request(R"({"op":"sweep","now":500,"ttl":100})");
  ASSERT_TRUE(ok(sw));
  EXPECT_EQ(sw.num("evicted"), 1);
  EXPECT_EQ(sw.str("names"), "tmp");
  EXPECT_FALSE(ok(client.request(R"({"op":"unknown-op"})")));
}

TEST(Traced, ServiceFailedStreamSurfacesError) {
  traced::ServiceOptions so;
  so.workers = 1;
  traced::Service svc(so);
  ProtoClient client(svc);
  ASSERT_TRUE(client.request(R"({"op":"open","session":"bad"})").boolean("ok"));
  std::vector<std::uint8_t> garbage(64, 0xAB);
  ASSERT_TRUE(client
                  .request(traced::JsonWriter()
                               .field("op", "feed")
                               .field("session", "bad")
                               .field("bytes", std::uint64_t{64})
                               .done(),
                           garbage)
                  .boolean("ok"));
  const auto st = client.request(R"({"op":"status","session":"bad","sync":true})");
  EXPECT_EQ(st.str("phase"), "failed");
  EXPECT_FALSE(st.str("error").empty());
  // Queries on a failed session are error responses.
  EXPECT_FALSE(client.request(R"({"op":"query","session":"bad","kind":"legend"})")
                   .boolean("ok"));
}

TEST(Traced, ServiceWarnsWhenFinalizeSealedNothing) {
  // A short trace under the default 50ms reorder window never seals a
  // chunk: the whole stream sat in memory and --seal silently did nothing.
  // finalize must say so — a "hint" field in the response plus one logger
  // line — without touching the warnings list (that stays byte-identical
  // to the offline conversion).
  const auto bytes = tracegen_bytes(3000, 4, 9);
  auto feed_and_finalize = [&](traced::OnlineOptions oo,
                               std::vector<std::string>* log) {
    traced::ServiceOptions so;
    so.workers = 1;
    so.online = oo;
    traced::Service svc(so);
    svc.set_logger([log](const std::string& msg) { log->push_back(msg); });
    ProtoClient client(svc);
    EXPECT_TRUE(client.request(R"({"op":"open","session":"r"})").boolean("ok"));
    EXPECT_TRUE(client
                    .request(traced::JsonWriter()
                                 .field("op", "feed")
                                 .field("session", "r")
                                 .field("bytes",
                                        static_cast<std::uint64_t>(bytes.size()))
                                 .done(),
                             bytes)
                    .boolean("ok"));
    (void)client.request(R"({"op":"status","session":"r","sync":true})");
    return client.request(R"({"op":"finalize","session":"r"})");
  };

  traced::OnlineOptions buffered;
  buffered.seal_bytes = 4 * 1024;  // would seal, if anything were admitted
  std::vector<std::string> log;
  const auto resp = feed_and_finalize(buffered, &log);
  ASSERT_TRUE(resp.boolean("ok"));
  ASSERT_TRUE(resp.has("hint"));
  EXPECT_NE(resp.str("hint").find("sealed 0 chunks"), std::string::npos);
  ASSERT_EQ(log.size(), 1U);
  EXPECT_NE(log[0].find("sealed 0 chunks"), std::string::npos);
  EXPECT_NE(log[0].find("--seal"), std::string::npos);

  // Same stream with a disorder bound matched to the trace's time scale:
  // chunks seal, and the hint must not appear.
  traced::OnlineOptions sealing = buffered;
  sealing.max_disorder = 1e-6;
  std::vector<std::string> log2;
  const auto resp2 = feed_and_finalize(sealing, &log2);
  ASSERT_TRUE(resp2.boolean("ok"));
  EXPECT_FALSE(resp2.has("hint"));
  EXPECT_TRUE(log2.empty());
}

TEST(TracedScale, MillionEventByteIdentityAcrossChunkSizes) {
  util::TempDir tmp("traced");
  const auto bytes = tracegen_bytes(1000000, 16, 42);
  const clog2::File parsed = clog2::parse(bytes);
  traced::OnlineOptions oo;
  oo.convert.threads = 4;
  oo.max_disorder = 1e-6;  // sorted stream; exercise steady-state sealing
  oo.spill_dir = tmp.file("spill");
  const slog2::File offline = slog2::convert(parsed, oo.convert);
  const auto offline_bytes = slog2::serialize(offline);
  for (const std::size_t chunk : {std::size_t{64} * 1024, std::size_t{1} << 20,
                                  bytes.size()}) {
    traced::OnlineUsage usage;
    const slog2::File online = online_convert(bytes, chunk, oo, nullptr, &usage);
    EXPECT_EQ(slog2::serialize(online), offline_bytes)
        << "chunk size " << chunk;
    // No full-trace buffering: the live set stays well below the trace.
    EXPECT_LT(usage.peak_live_bytes, bytes.size() / 4) << "chunk " << chunk;
  }
}

}  // namespace

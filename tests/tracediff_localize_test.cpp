// Fault-localization acceptance suite for pilot-tracediff: diffing a faulted
// run against its fault-free twin (same program, same seed) must put the
// injected-fault rank at the top of the suspect list.
//
// The scenarios are the PR-3 chaos-matrix shapes on the deterministic sum
// farm: seed-swept rank crashes (call- and event-targeted, the matrix
// ordinal formula) and seed-swept targeted message delays
// (delay=PROB:MAX_MS@RANK). The acceptance bar is >= 90% top-1 localization
// over the scenarios where the fault actually fired and left evidence — a
// crash that lands before the victim logged anything leaves nothing to
// localize, and a delay schedule where no jitter clears the 1 ms floor is
// indistinguishable from the clean run by construction.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/tracediff.hpp"
#include "clog2/clog2.hpp"
#include "mpe/mpe.hpp"
#include "pilot/pi.hpp"
#include "pilot/runtime.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

// The lab2-style sum farm from the chaos matrix: PI_MAIN plus three
// workers, four rounds of write/read per worker, fully deterministic.
constexpr int kWorkers = 3;
constexpr int kRounds = 4;

PI_CHANNEL* g_to[kWorkers];
PI_CHANNEL* g_from[kWorkers];

int farm_worker(int index, void*) {
  for (int r = 0; r < kRounds; ++r) {
    int base = 0;
    PI_Read(g_to[index], "%d", &base);
    int sum = 0;
    for (int v = 0; v < 100; ++v) sum += base + v;
    PI_Write(g_from[index], "%d", sum);
  }
  return 0;
}

pilot::RunResult run_farm(std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog", "-piwatchdog=20", "-pisvc=j",
                                   "-pirobust"};
  for (auto& a : extra) args.push_back(std::move(a));
  return pilot::run(args, [](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < kWorkers; ++i) {
      PI_PROCESS* w = PI_CreateProcess(farm_worker, i, nullptr);
      g_to[i] = PI_CreateChannel(PI_MAIN, w);
      g_from[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_StartAll();
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kWorkers; ++i) PI_Write(g_to[i], "%d", r * 10 + i);
      for (int i = 0; i < kWorkers; ++i) {
        int s = 0;
        PI_Read(g_from[i], "%d", &s);
      }
    }
    PI_StopMain(0);
    return 0;
  });
}

std::size_t rank_instance_records(const clog2::File& f, int rank) {
  std::size_t n = 0;
  for (const auto& rec : f.records) {
    if (const auto* e = std::get_if<clog2::EventRec>(&rec)) {
      if (e->rank == rank) ++n;
    } else if (const auto* m = std::get_if<clog2::MsgRec>(&rec)) {
      if (m->rank == rank) ++n;
    }
  }
  return n;
}

TEST(TraceDiffLocalize, CrashedRankIsTopSuspect) {
  util::TempDir dir;
  ASSERT_FALSE(
      run_farm({"-piout=" + dir.path().string(), "-piname=clean"}).aborted);
  const clog2::File ref = clog2::read_file(dir.file("clean.clog2"));

  int total = 0, hits = 0;
  std::string misses;
  for (int seed = 1; seed <= 20; ++seed) {
    // The chaos-matrix crash formula: victim in 1..3, ordinal spanning
    // startup / mid-run / overshoot, alternating call- and event-targeted.
    const int victim = 1 + seed % kWorkers;
    const std::string plan =
        util::strprintf("seed=%d;grace=0.4;crash=%d@%s:%d", seed, victim,
                        seed % 2 == 1 ? "event" : "call", 1 + (seed * 7) % 24);
    const std::string name = util::strprintf("c%d", seed);
    const auto res = run_farm({"-piout=" + dir.path().string(),
                               "-piname=" + name, "-pifault=" + plan});
    if (!res.aborted) continue;  // ordinal overshot: no fault to localize
    const clog2::File salvaged = mpe::salvage(dir.file(name).string());
    if (rank_instance_records(salvaged, victim) == 0)
      continue;  // died before logging anything: no evidence in the trace

    const analyze::TraceDiffResult diff = analyze::diff_traces(ref, salvaged);
    if (!diff.structural_diverged)
      continue;  // crash hit after the last logged record: invisible fault
    ASSERT_FALSE(diff.suspects.empty()) << plan;
    ++total;
    if (diff.suspects.front().rank == victim)
      ++hits;
    else
      misses += util::strprintf("plan %s blamed rank %d\n", plan.c_str(),
                                diff.suspects.front().rank);
  }
  ASSERT_GE(total, 8) << "sweep produced too few localizable crashes";
  EXPECT_GE(static_cast<double>(hits), 0.9 * static_cast<double>(total))
      << hits << "/" << total << " localized; misses:\n"
      << misses;
}

TEST(TraceDiffLocalize, DelayedRankIsTopSuspect) {
  // Delay localization compares millisecond latencies, so the sweep runs on
  // the tasks substrate: virtual time makes the injected jitter exact and
  // the clean twin noise-free, independent of host scheduler load.
  util::TempDir dir;
  ASSERT_FALSE(run_farm({"-piexec=tasks", "-piout=" + dir.path().string(),
                         "-piname=clean"})
                   .aborted);
  const clog2::File ref = clog2::read_file(dir.file("clean.clog2"));

  int total = 0, hits = 0;
  std::string misses;
  for (int seed = 1; seed <= 20; ++seed) {
    const int victim = 1 + seed % kWorkers;
    const std::string plan =
        util::strprintf("seed=%d;delay=0.8:4@%d", seed, victim);
    const std::string name = util::strprintf("d%d", seed);
    const auto res = run_farm({"-piexec=tasks",
                               "-piout=" + dir.path().string(),
                               "-piname=" + name, "-pifault=" + plan});
    ASSERT_FALSE(res.aborted) << plan;

    const clog2::File sus = clog2::read_file(dir.file(name + ".clog2"));
    const analyze::TraceDiffResult diff = analyze::diff_traces(ref, sus);
    // A delay changes when, never what: the event sequence must match.
    EXPECT_FALSE(diff.structural_diverged) << plan;
    if (diff.suspects.empty())
      continue;  // every fired jitter stayed under the 1 ms floor
    ++total;
    if (diff.suspects.front().rank == victim)
      ++hits;
    else
      misses += util::strprintf("plan %s blamed rank %d\n", plan.c_str(),
                                diff.suspects.front().rank);
  }
  ASSERT_GE(total, 15) << "sweep produced too few detectable delays";
  EXPECT_GE(static_cast<double>(hits), 0.9 * static_cast<double>(total))
      << hits << "/" << total << " localized; misses:\n"
      << misses;
}

}  // namespace

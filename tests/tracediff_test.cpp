// Property and golden tests for analyze::diff_traces and the refactored
// pilot-tracecheck:
//
//   * diff(A, A) is empty for every fixture trace;
//   * diff(A, B) and diff(B, A) agree up to role labels (mismatches on the
//     same ranks; "suspect short" flips to "suspect long");
//   * the diffpair fixture produces the checked-in golden diagnostics;
//   * check_trace on the messy fixture still renders byte-for-byte the
//     pre-refactor verdict (the query-core port changed no output).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analyze/tracecheck.hpp"
#include "analyze/tracediff.hpp"
#include "clog2/clog2.hpp"
#include "util/fs.hpp"

namespace {

std::string fixture(const std::string& name) {
  return std::string(PILOT_FIXTURE_DIR) + "/" + name;
}

TEST(TraceDiff, DiffWithItselfIsEmpty) {
  for (const char* name : {"tiny.clog2", "messy.clog2", "diffpair.a.clog2",
                           "diffpair.b.clog2"}) {
    const clog2::File f = clog2::read_file(fixture(name));
    const analyze::TraceDiffResult res = analyze::diff_traces(f, f);
    EXPECT_TRUE(res.comparable) << name;
    EXPECT_FALSE(res.diverged()) << name << "\n" << res.report.to_text();
    EXPECT_TRUE(res.report.empty()) << name << "\n" << res.report.to_text();
    EXPECT_TRUE(res.suspects.empty()) << name;
    for (const auto& d : res.deltas)
      EXPECT_FALSE(d.structural) << name << " rank " << d.rank;
  }
}

TEST(TraceDiff, SymmetricUpToRoleLabels) {
  const clog2::File a = clog2::read_file(fixture("diffpair.a.clog2"));
  const clog2::File b = clog2::read_file(fixture("diffpair.b.clog2"));
  const analyze::TraceDiffResult ab = analyze::diff_traces(a, b);
  const analyze::TraceDiffResult ba = analyze::diff_traces(b, a);

  EXPECT_TRUE(ab.structural_diverged);
  EXPECT_TRUE(ba.structural_diverged);
  EXPECT_TRUE(ab.report.has("TD102"));
  EXPECT_TRUE(ba.report.has("TD102"));

  // The same set of ranks diverges in both directions, at the same per-rank
  // positions, with short and long roles swapped.
  ASSERT_EQ(ab.deltas.size(), ba.deltas.size());
  for (std::size_t r = 0; r < ab.deltas.size(); ++r) {
    const analyze::RankDelta& fwd = ab.deltas[r];
    const analyze::RankDelta& rev = ba.deltas[r];
    EXPECT_EQ(fwd.structural, rev.structural) << "rank " << r;
    if (!fwd.structural) continue;
    EXPECT_EQ(fwd.ref_pos, rev.ref_pos) << "rank " << r;
    using Shape = analyze::RankDelta::Shape;
    if (fwd.shape == Shape::kSuspectShort)
      EXPECT_EQ(rev.shape, Shape::kSuspectLong) << "rank " << r;
    else if (fwd.shape == Shape::kSuspectLong)
      EXPECT_EQ(rev.shape, Shape::kSuspectShort) << "rank " << r;
    else
      EXPECT_EQ(rev.shape, Shape::kMismatch) << "rank " << r;
  }
  const auto td103_ranks = [](const analyze::Report& rep, const char* id) {
    std::set<std::string> subjects;
    for (const auto& d : rep.with_id(id)) subjects.insert(d.subject);
    return subjects;
  };
  EXPECT_EQ(td103_ranks(ab.report, "TD103"), td103_ranks(ba.report, "TD104"));
  EXPECT_EQ(td103_ranks(ab.report, "TD104"), td103_ranks(ba.report, "TD103"));
}

TEST(TraceDiff, DiffpairMatchesGoldenDiagnostics) {
  const clog2::File a = clog2::read_file(fixture("diffpair.a.clog2"));
  const clog2::File b = clog2::read_file(fixture("diffpair.b.clog2"));
  const analyze::TraceDiffResult res = analyze::diff_traces(a, b);
  EXPECT_EQ(res.report.to_text(),
            util::read_text_file(fixture("diffpair.tracediff.txt")));

  // The size flip on rank 1 is the earliest divergence; rank 1 must lead
  // the suspect list with the "L57" source-line context attached.
  ASSERT_FALSE(res.suspects.empty());
  EXPECT_EQ(res.suspects.front().rank, 1);
  EXPECT_EQ(res.suspects.front().line, 57);
  ASSERT_TRUE(res.report.has("TD301"));
  EXPECT_EQ(res.report.with_id("TD301").front().subject, "rank 1");
}

TEST(TraceDiff, RankCountMismatchIsTD101) {
  const clog2::File a = clog2::read_file(fixture("diffpair.a.clog2"));
  clog2::File wide = a;
  wide.nranks = 5;
  const analyze::TraceDiffResult res = analyze::diff_traces(a, wide);
  EXPECT_FALSE(res.comparable);
  EXPECT_TRUE(res.diverged());
  EXPECT_TRUE(res.report.has("TD101")) << res.report.to_text();
}

TEST(TraceCheck, MessyFixtureVerdictIsByteIdenticalToGolden) {
  const clog2::File f = clog2::read_file(fixture("messy.clog2"));
  const analyze::Report rep = analyze::check_trace(f);
  EXPECT_EQ(rep.to_text(),
            util::read_text_file(fixture("messy.tracecheck.txt")));
}

TEST(TraceCheck, TinyFixtureStaysClean) {
  const clog2::File f = clog2::read_file(fixture("tiny.clog2"));
  EXPECT_TRUE(analyze::check_trace(f).empty());
}

}  // namespace

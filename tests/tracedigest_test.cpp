// pilot-tracedigest's library half: budgeted, deterministic summaries.
//
//   * determinism: same trace + same Options (seed included) is
//     byte-identical, in text and JSON, across repeated runs and across
//     the v1/v2 frame encodings of the same trace;
//   * budget property: for budgets swept 256..64k (plus hostile tiny
//     values) over mixed traces, the rendered digest NEVER exceeds the
//     budget, and a generous budget produces an untruncated digest;
//   * dedup correctness: a hand-built trace where every rank runs the same
//     repeated motif collapses to ONE motif line with a rank range and a
//     repeat count;
//   * anomaly scoring: a hand-built straggler rank and slow edge are
//     surfaced, highest score first.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "clog2/clog2.hpp"
#include "digest/digest.hpp"
#include "slog2/slog2.hpp"
#include "tracegen/tracegen.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

#ifndef PILOT_FIXTURE_DIR
#error "PILOT_FIXTURE_DIR must be defined by the build"
#endif

namespace {

std::filesystem::path fixture(const std::string& name) {
  return std::filesystem::path(PILOT_FIXTURE_DIR) / name;
}

std::vector<std::uint8_t> tracegen_slog2(std::uint64_t events,
                                         std::int32_t ranks,
                                         std::uint64_t seed,
                                         slog2::FrameEncoding enc) {
  tracegen::Options o;
  o.events = events;
  o.nranks = ranks;
  o.seed = seed;
  slog2::ConvertOptions co;
  co.encoding = enc;
  return slog2::serialize(slog2::convert(tracegen::generate(o), co));
}

/// nranks ranks each running `reps` iterations of Compute-then-Exchange,
/// with per-rank state durations scaled by `stretch[rank]` (1.0 = normal).
/// The shape the motif collapser and the skew scorer exist for.
clog2::File motif_trace(std::int32_t nranks, int reps,
                        const std::vector<double>& stretch) {
  clog2::File f;
  f.nranks = nranks;
  f.records.push_back(clog2::StateDef{1, 11, 12, "Compute", "gray", ""});
  f.records.push_back(clog2::StateDef{2, 13, 14, "Exchange", "green", ""});
  for (std::int32_t r = 0; r < nranks; ++r)
    f.records.push_back(clog2::SyncRec{r, 0.0, 0.0});
  for (std::int32_t r = 0; r < nranks; ++r) {
    const double scale =
        r < static_cast<std::int32_t>(stretch.size()) ? stretch[r] : 1.0;
    double t = 0.001 * (r + 1);
    for (int i = 0; i < reps; ++i) {
      f.records.push_back(clog2::EventRec{t, r, 11, ""});
      t += 0.010 * scale;
      f.records.push_back(clog2::EventRec{t, r, 12, ""});
      t += 0.001;
      f.records.push_back(clog2::EventRec{t, r, 13, ""});
      t += 0.002 * scale;
      f.records.push_back(clog2::EventRec{t, r, 14, ""});
      t += 0.001;
    }
  }
  return f;
}

slog2::Navigator navigator_of(const clog2::File& clog) {
  return slog2::Navigator(slog2::serialize(slog2::convert(clog)));
}

TEST(TraceDigest, DeterministicPerSeedAndAcrossEncodings) {
  for (const bool json : {false, true}) {
    digest::Options opts;
    opts.json = json;
    opts.seed = 99;
    opts.budget = 64 * 1024;
    const auto v1 = tracegen_slog2(4000, 6, 13, slog2::FrameEncoding::kV1);
    const auto v2 = tracegen_slog2(4000, 6, 13, slog2::FrameEncoding::kV2);
    slog2::Navigator n1a(v1), n1b(v1), n2(v2);
    const std::string a = digest::summarize(n1a, opts);
    const std::string b = digest::summarize(n1b, opts);
    EXPECT_EQ(a, b) << "digest not deterministic (json=" << json << ")";
    // The digest reports the encoding, so v1 and v2 digests differ only in
    // that one token: everything derived from the drawables is identical.
    std::string c = digest::summarize(n2, opts);
    std::size_t pos;
    while ((pos = c.find("v2")) != std::string::npos) c.replace(pos, 2, "v1");
    EXPECT_EQ(a, c) << "digest differs across frame encodings";
    EXPECT_FALSE(a.empty());
  }
}

TEST(TraceDigest, SeedChangesOnlySampling) {
  // Different seeds must still be internally deterministic; on a trace with
  // no popup texts they are byte-identical (the seed only drives exemplar
  // sampling).
  const auto bytes = tracegen_slog2(2000, 4, 3, slog2::FrameEncoding::kV1);
  digest::Options a, b;
  a.seed = 1;
  b.seed = 2;
  slog2::Navigator na(bytes), nb(bytes);
  // tracegen states carry no popup text, so exemplars never differ.
  EXPECT_EQ(digest::summarize(na, a), digest::summarize(nb, b));
}

TEST(TraceDigest, BudgetNeverExceeded) {
  struct Case {
    const char* label;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Case> cases;
  cases.push_back({"tracegen-mid",
                   tracegen_slog2(6000, 12, 21, slog2::FrameEncoding::kV2)});
  cases.push_back({"tracegen-small",
                   tracegen_slog2(500, 2, 4, slog2::FrameEncoding::kV1)});
  cases.push_back(
      {"messy", slog2::serialize(slog2::convert(
                    clog2::read_file(fixture("messy.clog2"))))});
  cases.push_back({"motif", slog2::serialize(slog2::convert(
                                motif_trace(64, 20, {})))});

  for (const Case& c : cases) {
    for (const bool json : {false, true}) {
      for (std::size_t budget = 256; budget <= 64 * 1024; budget *= 2) {
        digest::Options opts;
        opts.budget = budget;
        opts.json = json;
        slog2::Navigator nav(c.bytes);
        const std::string out = digest::summarize(nav, opts);
        EXPECT_LE(out.size(), budget)
            << c.label << " json=" << json << " budget=" << budget;
        EXPECT_FALSE(out.empty())
            << c.label << " json=" << json << " budget=" << budget;
      }
      // Hostile tiny budgets: still never exceeded (possibly empty).
      for (const std::size_t budget : {std::size_t{0}, std::size_t{1},
                                       std::size_t{8}, std::size_t{40}}) {
        digest::Options opts;
        opts.budget = budget;
        opts.json = json;
        slog2::Navigator nav(c.bytes);
        EXPECT_LE(digest::summarize(nav, opts).size(), budget)
            << c.label << " json=" << json << " budget=" << budget;
      }
    }
  }
}

TEST(TraceDigest, GenerousBudgetIsNotTruncated) {
  const auto bytes = tracegen_slog2(2000, 4, 8, slog2::FrameEncoding::kV1);
  digest::Options opts;
  opts.budget = 1 << 20;
  slog2::Navigator nav(bytes);
  const std::string out = digest::summarize(nav, opts);
  EXPECT_EQ(out.find("[truncated]"), std::string::npos);
  digest::Options jopts = opts;
  jopts.json = true;
  slog2::Navigator nav2(bytes);
  EXPECT_NE(digest::summarize(nav2, jopts).find("\"truncated\":false"),
            std::string::npos);
}

TEST(TraceDigest, SpmdRanksCollapseToOneMotif) {
  // 16 identical ranks, 12 iterations of Compute Exchange each: the motif
  // section must be ONE line covering ranks 0-15 with an x12 repeat.
  slog2::Navigator nav = navigator_of(motif_trace(16, 12, {}));
  const digest::Digest d = digest::analyze(nav);
  ASSERT_EQ(d.motifs.size(), 1u) << "identical ranks did not dedup";
  EXPECT_EQ(d.motifs[0].ranks.size(), 16u);
  EXPECT_EQ(d.motifs[0].ranks.front(), 0);
  EXPECT_EQ(d.motifs[0].ranks.back(), 15);
  EXPECT_NE(d.motifs[0].motif.find("Compute"), std::string::npos)
      << d.motifs[0].motif;
  EXPECT_NE(d.motifs[0].motif.find("Exchange"), std::string::npos)
      << d.motifs[0].motif;
  EXPECT_NE(d.motifs[0].motif.find("x12"), std::string::npos)
      << d.motifs[0].motif;
  // And the rendered line uses a compact rank range.
  digest::Options opts;
  opts.budget = 64 * 1024;
  const std::string out = digest::render(d, opts);
  EXPECT_NE(out.find("ranks 0-15:"), std::string::npos) << out;
}

TEST(TraceDigest, DivergentRankGetsItsOwnMotif) {
  // 4 ranks; rank 3 runs 20 Compute iterations, ranks 0-2 run 10.
  clog2::File g;
  g.nranks = 4;
  g.records.push_back(clog2::StateDef{1, 11, 12, "Compute", "gray", ""});
  g.records.push_back(clog2::StateDef{2, 13, 14, "Exchange", "green", ""});
  for (std::int32_t r = 0; r < 4; ++r)
    g.records.push_back(clog2::SyncRec{r, 0.0, 0.0});
  for (std::int32_t r = 0; r < 4; ++r) {
    double t = 0.001 * (r + 1);
    const int reps = r == 3 ? 20 : 10;
    for (int i = 0; i < reps; ++i) {
      g.records.push_back(clog2::EventRec{t, r, 11, ""});
      t += 0.010;
      g.records.push_back(clog2::EventRec{t, r, 12, ""});
      t += 0.001;
    }
  }
  slog2::Navigator nav = navigator_of(g);
  const digest::Digest d = digest::analyze(nav);
  ASSERT_EQ(d.motifs.size(), 2u);
  EXPECT_EQ(d.motifs[0].ranks, (std::vector<std::int32_t>{0, 1, 2}));
  EXPECT_EQ(d.motifs[1].ranks, (std::vector<std::int32_t>{3}));
  EXPECT_NE(d.motifs[0].motif.find("x10"), std::string::npos);
  EXPECT_NE(d.motifs[1].motif.find("x20"), std::string::npos);
}

TEST(TraceDigest, StragglerRankIsTopAnomaly) {
  // Rank 2 of 8 runs 5x-stretched states: busy skew flags it first.
  std::vector<double> stretch(8, 1.0);
  stretch[2] = 5.0;
  slog2::Navigator nav = navigator_of(motif_trace(8, 10, stretch));
  const digest::Digest d = digest::analyze(nav);
  ASSERT_FALSE(d.anomalies.empty()) << "straggler not flagged";
  EXPECT_EQ(d.anomalies[0].kind, "rank_busy_high");
  EXPECT_NE(d.anomalies[0].detail.find("rank 2"), std::string::npos)
      << d.anomalies[0].detail;
  EXPECT_GT(d.anomalies[0].score, 2.0);
}

TEST(TraceDigest, UniformTraceHasNoAnomalies) {
  slog2::Navigator nav = navigator_of(motif_trace(8, 10, {}));
  const digest::Digest d = digest::analyze(nav);
  EXPECT_TRUE(d.anomalies.empty())
      << d.anomalies[0].kind << ": " << d.anomalies[0].detail;
}

TEST(TraceDigest, SlowEdgeIsFlagged) {
  // Four edges with ~1ms latency, one with 40ms: edge_latency anomaly.
  clog2::File f;
  f.nranks = 4;
  using Kind = clog2::MsgRec::Kind;
  for (std::int32_t r = 0; r < 4; ++r)
    f.records.push_back(clog2::SyncRec{r, 0.0, 0.0});
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    for (std::int32_t r = 0; r < 3; ++r) {
      f.records.push_back(clog2::MsgRec{t, r, Kind::kSend, r + 1, 1, 8});
      f.records.push_back(
          clog2::MsgRec{t + 0.001, r + 1, Kind::kRecv, r, 1, 8});
    }
    f.records.push_back(clog2::MsgRec{t, 3, Kind::kSend, 0, 1, 8});
    f.records.push_back(clog2::MsgRec{t + 0.040, 0, Kind::kRecv, 3, 1, 8});
    t += 0.050;
  }
  slog2::Navigator nav = navigator_of(f);
  const digest::Digest d = digest::analyze(nav);
  ASSERT_FALSE(d.anomalies.empty());
  EXPECT_EQ(d.anomalies[0].kind, "edge_latency");
  EXPECT_NE(d.anomalies[0].detail.find("3->0"), std::string::npos)
      << d.anomalies[0].detail;
}

TEST(TraceDigest, WindowRestrictsTheDigest) {
  const auto bytes = tracegen_slog2(4000, 4, 17, slog2::FrameEncoding::kV1);
  slog2::Navigator whole(bytes), windowed(bytes);
  const digest::Digest all = digest::analyze(whole);
  digest::Options opts;
  opts.t1 = (all.t_min + all.t_max) / 2;
  const digest::Digest half = digest::analyze(windowed, opts);
  EXPECT_LT(half.states, all.states);
  EXPECT_LT(half.arrows, all.arrows);
}

}  // namespace

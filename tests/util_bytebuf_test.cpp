#include "util/bytebuf.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace {

using util::ByteReader;
using util::ByteWriter;

TEST(ByteBuf, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i8(-5);
  w.i16(-1234);
  w.i32(-123456789);
  w.i64(-1234567890123456789LL);
  w.f64(3.14159265358979);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i8(), -5);
  EXPECT_EQ(r.i16(), -1234);
  EXPECT_EQ(r.i32(), -123456789);
  EXPECT_EQ(r.i64(), -1234567890123456789LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159265358979);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuf, RoundTripSpecialDoubles) {
  ByteWriter w;
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(std::numeric_limits<double>::min());
  w.f64(std::numeric_limits<double>::max());
  w.f64(std::numeric_limits<double>::denorm_min());

  ByteReader r(w.bytes());
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::min());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::max());
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(ByteBuf, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(ByteBuf, Strings) {
  ByteWriter w;
  w.str("");
  w.str("hello");
  w.str(std::string("emb\0edded", 9));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), std::string("emb\0edded", 9));
}

TEST(ByteBuf, TruncatedReadThrows) {
  ByteWriter w;
  w.u32(1234);
  ByteReader r(w.bytes().data(), 3);  // one byte short
  EXPECT_THROW(r.u32(), util::IoError);
}

TEST(ByteBuf, TruncatedStringThrows) {
  ByteWriter w;
  w.str("hello world");
  auto bytes = w.bytes();
  bytes.resize(bytes.size() - 4);
  ByteReader r(bytes);
  EXPECT_THROW(r.str(), util::IoError);
}

TEST(ByteBuf, PatchU32) {
  ByteWriter w;
  w.u32(0);  // placeholder
  w.str("payload");
  w.patch_u32(0, static_cast<std::uint32_t>(w.size()));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), w.size());
  EXPECT_EQ(r.str(), "payload");
}

TEST(ByteBuf, PatchOutOfRangeThrows) {
  ByteWriter w;
  w.u16(1);
  EXPECT_THROW(w.patch_u32(0, 5), util::UsageError);
}

TEST(ByteBuf, SeekAndRemaining) {
  ByteWriter w;
  w.u32(7);
  w.u32(9);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.seek(4);
  EXPECT_EQ(r.u32(), 9u);
  EXPECT_THROW(r.seek(100), util::IoError);
}

}  // namespace

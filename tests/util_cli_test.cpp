#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace {

TEST(ArgParser, KeyValueAndFlags) {
  util::ArgParser p({"prog", "--workers=5", "--verbose", "input.c"});
  EXPECT_EQ(p.program(), "prog");
  EXPECT_EQ(p.get_int_or("workers", 0), 5);
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("quiet"));
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "input.c");
}

TEST(ArgParser, Defaults) {
  util::ArgParser p({"prog"});
  EXPECT_EQ(p.get_or("name", "fallback"), "fallback");
  EXPECT_EQ(p.get_int_or("n", 42), 42);
  EXPECT_DOUBLE_EQ(p.get_double_or("scale", 0.5), 0.5);
}

TEST(ArgParser, DoubleParsing) {
  util::ArgParser p({"prog", "--scale=0.25"});
  EXPECT_DOUBLE_EQ(p.get_double_or("scale", 1.0), 0.25);
}

TEST(ArgParser, BadIntegerThrows) {
  util::ArgParser p({"prog", "--n=abc"});
  EXPECT_THROW(static_cast<void>(p.get_int_or("n", 0)), util::UsageError);
}

TEST(ArgParser, UnusedKeysDetectsTypos) {
  util::ArgParser p({"prog", "--workres=5", "--out=x"});
  (void)p.get("out");
  const auto unused = p.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "workres");
}

// Helper building a mutable argv like main() receives.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& s : storage) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
    argv = ptrs.data();
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** argv = nullptr;
};

TEST(StripArgs, RemovesPilotOptionsInPlace) {
  Argv a({"prog", "-pisvc=cj", "user-arg", "-pisvc=d"});
  char** argv = a.argv;
  int argc = a.argc;
  const auto taken = util::strip_args_with_prefix(&argc, &argv, "-pisvc=");
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0], "cj");
  EXPECT_EQ(taken[1], "d");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "user-arg");
}

TEST(StripArgs, LeavesProgramNameAlone) {
  // argv[0] must never be stripped even if it happens to match.
  Argv a({"-pisvc=weird-binary-name", "-pisvc=c"});
  char** argv = a.argv;
  int argc = a.argc;
  const auto taken = util::strip_args_with_prefix(&argc, &argv, "-pisvc=");
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0], "c");
  EXPECT_EQ(argc, 1);
}

TEST(StripArgs, NoMatches) {
  Argv a({"prog", "x", "y"});
  char** argv = a.argv;
  int argc = a.argc;
  const auto taken = util::strip_args_with_prefix(&argc, &argv, "-picheck=");
  EXPECT_TRUE(taken.empty());
  EXPECT_EQ(argc, 3);
}

TEST(StripArgs, NullSafe) {
  int argc = 0;
  const auto taken = util::strip_args_with_prefix(&argc, nullptr, "-x=");
  EXPECT_TRUE(taken.empty());
}

}  // namespace

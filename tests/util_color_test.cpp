#include "util/color.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace {

TEST(Color, PaperPaletteIsKnown) {
  // Every colour named by the paper's visual design must resolve.
  for (const char* name : {"red", "green", "ForestGreen", "IndianRed", "bisque",
                           "gray", "yellow", "white"}) {
    EXPECT_TRUE(util::is_known_color(name)) << name;
  }
}

TEST(Color, LookupIsCaseInsensitive) {
  EXPECT_EQ(util::color_by_name("ForestGreen"), util::color_by_name("forestgreen"));
  EXPECT_EQ(util::color_by_name("RED"), util::color_by_name("red"));
}

TEST(Color, KnownValues) {
  EXPECT_EQ(util::color_by_name("red").to_hex(), "#ff0000");
  EXPECT_EQ(util::color_by_name("forestgreen").to_hex(), "#228b22");
  EXPECT_EQ(util::color_by_name("indianred").to_hex(), "#cd5c5c");
  EXPECT_EQ(util::color_by_name("bisque").to_hex(), "#ffe4c4");
}

TEST(Color, UnknownNameThrows) {
  EXPECT_THROW(util::color_by_name("notacolor"), util::UsageError);
  EXPECT_FALSE(util::is_known_color("notacolor"));
}

TEST(Color, HexRoundTrip) {
  const util::Color c = util::color_from_hex("#a1B2c3");
  EXPECT_EQ(c.r, 0xA1);
  EXPECT_EQ(c.g, 0xB2);
  EXPECT_EQ(c.b, 0xC3);
  EXPECT_EQ(c.to_hex(), "#a1b2c3");
}

TEST(Color, BadHexThrows) {
  EXPECT_THROW(util::color_from_hex("a1b2c3"), util::UsageError);
  EXPECT_THROW(util::color_from_hex("#xyzxyz"), util::UsageError);
  EXPECT_THROW(util::color_from_hex("#fff"), util::UsageError);
}

TEST(Color, Luminance) {
  EXPECT_GT(util::luminance(util::color_by_name("white")), 250.0);
  EXPECT_LT(util::luminance(util::color_by_name("black")), 5.0);
  // Yellow reads as bright, navy as dark: drives label-contrast choices.
  EXPECT_GT(util::luminance(util::color_by_name("yellow")),
            util::luminance(util::color_by_name("navy")));
}

}  // namespace

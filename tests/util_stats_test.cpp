#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/prng.hpp"

namespace {

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(util::median({3, 1, 2}), 2.0); }

TEST(Stats, MedianEven) { EXPECT_DOUBLE_EQ(util::median({4, 1, 3, 2}), 2.5); }

TEST(Stats, MedianSingleton) { EXPECT_DOUBLE_EQ(util::median({42}), 42.0); }

TEST(Stats, MedianEmptyThrows) {
  EXPECT_THROW(util::median({}), util::UsageError);
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(util::mean(xs), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(util::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(util::variance({5.0}), 0.0);
}

TEST(Stats, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::percentile(xs, 100), 100.0);
  EXPECT_NEAR(util::percentile(xs, 50), 50.5, 1e-9);
}

TEST(Stats, RunningMatchesBatch) {
  util::SplitMix64 rng(7);
  std::vector<double> xs;
  util::RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), 1000u);
  EXPECT_NEAR(rs.mean(), util::mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), util::variance(xs), 1e-9);
}

TEST(Stats, RunningMinMax) {
  util::RunningStats rs;
  rs.add(3);
  rs.add(-1);
  rs.add(10);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 10.0);
}

}  // namespace

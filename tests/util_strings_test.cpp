#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Strings, SplitBasic) {
  const auto parts = util::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitEmpty) {
  const auto parts = util::split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  hi \t\n"), "hi");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
  EXPECT_EQ(util::trim("x"), "x");
}

TEST(Strings, Join) {
  EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(util::join({}, ","), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(util::starts_with("-pisvc=cj", "-pisvc="));
  EXPECT_FALSE(util::starts_with("-pi", "-pisvc="));
  EXPECT_TRUE(util::ends_with("trace.slog2", ".slog2"));
  EXPECT_FALSE(util::ends_with("x", ".slog2"));
}

TEST(Strings, XmlEscape) {
  EXPECT_EQ(util::xml_escape(R"(<a & "b">)"), "&lt;a &amp; &quot;b&quot;&gt;");
  EXPECT_EQ(util::xml_escape("plain"), "plain");
}

TEST(Strings, Strprintf) {
  EXPECT_EQ(util::strprintf("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(util::strprintf("%s", ""), "");
}

TEST(Strings, TruncateBytes) {
  // The MPE popup-text limit the paper mentions is 40 bytes.
  const std::string long_text(100, 'a');
  EXPECT_EQ(util::truncate_bytes(long_text, 40).size(), 40u);
  EXPECT_EQ(util::truncate_bytes("short", 40), "short");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(util::human_seconds(3.21), "3.210 s");
  EXPECT_EQ(util::human_seconds(0.00123), "1.230 ms");
  EXPECT_EQ(util::human_seconds(45.6e-6), "45.600 us");
  EXPECT_EQ(util::human_seconds(12e-9), "12.0 ns");
}

}  // namespace

// End-to-end runs of the two demonstration applications (small sizes, costs
// free) — correctness of the pipelines themselves, independent of timing.
#include <gtest/gtest.h>

#include "slog2/slog2.hpp"
#include "util/fs.hpp"
#include "workloads/collision_app.hpp"
#include "workloads/thumbnail_app.hpp"

namespace {

namespace wt = workloads::thumbnail;
namespace wc = workloads::collisions;

wt::Config fast_thumbnail(int files, int workers) {
  wt::Config cfg;
  cfg.files = files;
  cfg.workers = workers;
  cfg.image_size = 32;
  cfg.costs.decode_per_pixel = 0;  // timing-free for unit tests
  cfg.costs.encode_per_pixel = 0;
  cfg.costs.io_per_byte = 0;
  cfg.pilot_args = {"-piwatchdog=30"};
  return cfg;
}

TEST(ThumbnailApp, ProcessesEveryFile) {
  const auto stats = wt::run_app(fast_thumbnail(25, 3));
  EXPECT_FALSE(stats.run.aborted);
  EXPECT_EQ(stats.files_out, 25u);
  EXPECT_GT(stats.bytes_in, 0u);
  EXPECT_GT(stats.bytes_out, 0u);
  // Thumbnails are much smaller than the inputs.
  EXPECT_LT(stats.bytes_out, stats.bytes_in);
  // Decoded thumbnails stay faithful (codec loss only).
  EXPECT_LT(stats.thumb_mean_error, 8.0);
}

TEST(ThumbnailApp, SingleWorkerStillCorrect) {
  const auto stats = wt::run_app(fast_thumbnail(10, 1));
  EXPECT_EQ(stats.files_out, 10u);
}

TEST(ThumbnailApp, WithJumpshotLogProducesCleanTrace) {
  util::TempDir dir;
  auto cfg = fast_thumbnail(12, 3);
  cfg.pilot_args.push_back("-pisvc=j");
  cfg.pilot_args.push_back("-piout=" + dir.path().string());
  const auto stats = wt::run_app(cfg);
  EXPECT_EQ(stats.files_out, 12u);

  // The paper's robustness claim (Fig. 1): thousands of Pilot calls convert
  // with zero errors.
  const auto slog = slog2::convert(clog2::read_file(dir.file("pilot.clog2")));
  EXPECT_TRUE(slog.stats.clean()) << slog2::to_text(slog);
  EXPECT_GT(slog.stats.total_arrows, 12u * 3);  // >=3 hops per file + control
  EXPECT_EQ(slog.nranks, 1 + 1 + 3);            // main + C + 3 workers
}

wc::AppConfig fast_collision(wc::Variant v, int workers) {
  wc::AppConfig cfg;
  cfg.variant = v;
  cfg.workers = workers;
  cfg.records = 5000;
  cfg.query_rounds = 3;
  cfg.costs.parse_per_byte = 0;  // timing-free for unit tests
  cfg.costs.query_per_record = 0;
  cfg.pilot_args = {"-piwatchdog=30"};
  return cfg;
}

class CollisionVariants
    : public ::testing::TestWithParam<std::tuple<wc::Variant, int>> {};

INSTANTIATE_TEST_SUITE_P(
    All, CollisionVariants,
    ::testing::Combine(::testing::Values(wc::Variant::kFixed,
                                         wc::Variant::kInstanceA,
                                         wc::Variant::kInstanceB),
                       ::testing::Values(1, 3, 5)));

TEST_P(CollisionVariants, AllVariantsComputeCorrectAnswers) {
  // The student programs were "not bugs in the sense of causing incorrect
  // results" — every variant must produce the right answers; only the
  // timing differs.
  const auto [variant, workers] = GetParam();
  const auto stats = wc::run_app(fast_collision(variant, workers));
  EXPECT_FALSE(stats.run.aborted);
  EXPECT_TRUE(stats.correct())
      << wc::variant_name(variant) << " totals=" << stats.totals.total
      << " oracle=" << stats.oracle.total;
  EXPECT_EQ(stats.totals.total, 5000u);
}

TEST(CollisionApp, PhaseTimesReported) {
  const auto stats = wc::run_app(fast_collision(wc::Variant::kFixed, 2));
  EXPECT_GE(stats.read_phase_seconds, 0.0);
  EXPECT_GE(stats.query_phase_seconds, 0.0);
}

}  // namespace

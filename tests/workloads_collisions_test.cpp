#include "workloads/collisions.hpp"

#include <gtest/gtest.h>

namespace {

namespace wc = workloads::collisions;

TEST(Collisions, GenerateDeterministic) {
  const auto a = wc::generate(1, 100);
  const auto b = wc::generate(1, 100);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].year, b[i].year);
    EXPECT_EQ(a[i].severity, b[i].severity);
  }
}

TEST(Collisions, FieldRangesPlausible) {
  for (const auto& r : wc::generate(2, 2000)) {
    EXPECT_GE(r.year, 1999);
    EXPECT_LE(r.year, 2017);
    EXPECT_GE(r.month, 1);
    EXPECT_LE(r.month, 12);
    EXPECT_GE(r.severity, 1);
    EXPECT_LE(r.severity, 3);
    EXPECT_GE(r.vehicles, 1);
    EXPECT_GE(r.persons, r.vehicles);
    EXPECT_GE(r.region, 0);
    EXPECT_LE(r.region, 12);
  }
}

TEST(Collisions, SeverityDistributionSkewed) {
  wc::QueryResult q = wc::run_queries(wc::generate(3, 20000));
  // Fatal collisions are rare; property damage dominates (like real data).
  EXPECT_LT(q.by_severity[1], q.by_severity[2]);
  EXPECT_LT(q.by_severity[2], q.by_severity[3]);
}

TEST(Collisions, CsvRoundTripWholeFile) {
  const auto records = wc::generate(4, 500);
  const std::string csv = wc::to_csv(records);
  const auto parsed = wc::parse_chunk(csv, 0, csv.size());
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].year, records[i].year);
    EXPECT_EQ(parsed[i].month, records[i].month);
    EXPECT_EQ(parsed[i].severity, records[i].severity);
    EXPECT_EQ(parsed[i].vehicles, records[i].vehicles);
    EXPECT_EQ(parsed[i].persons, records[i].persons);
    EXPECT_EQ(parsed[i].region, records[i].region);
    EXPECT_EQ(parsed[i].weather, records[i].weather);
  }
}

// The core property behind the assignment: partitioning the byte range into
// touching chunks parses every record exactly once, wherever the cuts land.
class ChunkPartition : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ChunkPartition,
                         ::testing::Values(1, 2, 3, 4, 7, 13));

TEST_P(ChunkPartition, ChunksCoverExactlyOnce) {
  const int workers = GetParam();
  const auto records = wc::generate(5, 997);  // odd count on purpose
  const std::string csv = wc::to_csv(records);

  const wc::QueryResult oracle = wc::run_queries(records);
  wc::QueryResult merged;
  const std::size_t per = csv.size() / static_cast<std::size_t>(workers);
  for (int i = 0; i < workers; ++i) {
    const std::size_t begin = static_cast<std::size_t>(i) * per;
    const std::size_t end =
        i == workers - 1 ? csv.size() : static_cast<std::size_t>(i + 1) * per;
    merged.merge(wc::run_queries(wc::parse_chunk(csv, begin, end)));
  }
  EXPECT_EQ(merged, oracle);
}

TEST(Collisions, MergeMatchesSequential) {
  const auto records = wc::generate(6, 1000);
  wc::QueryResult whole = wc::run_queries(records);
  wc::QueryResult split;
  std::vector<wc::Record> a(records.begin(), records.begin() + 400);
  std::vector<wc::Record> b(records.begin() + 400, records.end());
  split.merge(wc::run_queries(a));
  split.merge(wc::run_queries(b));
  EXPECT_EQ(split, whole);
  EXPECT_EQ(whole.total, 1000u);
}

TEST(Collisions, ChunkBeyondEofEmpty) {
  const std::string csv = wc::to_csv(wc::generate(7, 10));
  EXPECT_TRUE(wc::parse_chunk(csv, csv.size() + 5, csv.size() + 10).empty());
}

TEST(Collisions, MalformedLinesSkipped) {
  std::string csv = "year,month,severity,vehicles,persons,region,weather\n";
  csv += "2001,5,2,1,2,3,4\n";
  csv += "garbage line that is not a record\n";
  csv += "2002,6,3,2,3,4,5\n";
  const auto parsed = wc::parse_chunk(csv, 0, csv.size());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].year, 2001);
  EXPECT_EQ(parsed[1].year, 2002);
}

TEST(Collisions, CostModelMatchesPaperRate) {
  // Instance B reads 316 MB in ~11 s -> about 28 MB/s.
  const wc::CostModel costs;
  const double t = costs.parse_cost(316ull * 1024 * 1024);
  EXPECT_NEAR(t, 11.3, 1.0);
}

}  // namespace

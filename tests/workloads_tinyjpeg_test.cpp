#include "workloads/tinyjpeg.hpp"

#include <gtest/gtest.h>

namespace {

using workloads::CostModel;
using workloads::crop_and_subsample;
using workloads::decode;
using workloads::encode;
using workloads::generate_image;
using workloads::Image;
using workloads::mean_abs_error;

TEST(TinyJpeg, GenerateIsDeterministic) {
  const Image a = generate_image(5, 64, 48);
  const Image b = generate_image(5, 64, 48);
  const Image c = generate_image(6, 64, 48);
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_NE(a.pixels, c.pixels);
  EXPECT_EQ(a.width, 64);
  EXPECT_EQ(a.height, 48);
}

class CodecRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    SizesAndQualities, CodecRoundTrip,
    ::testing::Values(std::tuple{8, 8, 90}, std::tuple{16, 16, 75},
                      std::tuple{64, 64, 75}, std::tuple{64, 64, 30},
                      std::tuple{33, 17, 75},  // non-multiple-of-8 edges
                      std::tuple{128, 96, 50}, std::tuple{7, 5, 90}));

TEST_P(CodecRoundTrip, LossStaysBounded) {
  const auto [w, h, q] = GetParam();
  const Image img = generate_image(42, w, h);
  const auto bytes = encode(img, q);
  const Image back = decode(bytes);
  ASSERT_EQ(back.width, img.width);
  ASSERT_EQ(back.height, img.height);
  // Lossy but close: bound loosens as quality drops.
  const double bound = q >= 75 ? 4.0 : q >= 50 ? 7.0 : 12.0;
  EXPECT_LT(mean_abs_error(img, back), bound) << "q=" << q;
}

TEST(TinyJpeg, CompressionActuallyCompresses) {
  const Image img = generate_image(1, 128, 128);
  const auto bytes = encode(img, 75);
  EXPECT_LT(bytes.size(), img.pixel_count() / 2) << "smooth image should shrink well";
}

TEST(TinyJpeg, HigherQualityIsLarger) {
  const Image img = generate_image(2, 64, 64);
  EXPECT_LT(encode(img, 20).size(), encode(img, 95).size());
}

TEST(TinyJpeg, DecodeRejectsGarbage) {
  EXPECT_THROW(decode({}), util::IoError);
  EXPECT_THROW(decode({1, 2, 3, 4, 5}), util::IoError);
  auto bytes = encode(generate_image(3, 16, 16), 75);
  bytes[0] = 'X';
  EXPECT_THROW(decode(bytes), util::IoError);
}

TEST(TinyJpeg, DecodeRejectsTruncation) {
  const auto bytes = encode(generate_image(4, 32, 32), 75);
  for (std::size_t cut : {std::size_t{4}, std::size_t{8}, std::size_t{12},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode(prefix), util::IoError) << "cut=" << cut;
  }
}

TEST(TinyJpeg, CropAndSubsampleShape) {
  // Paper: centre 32% of the pixel array, then every third pixel.
  const Image img = generate_image(9, 90, 90);
  const Image thumb = crop_and_subsample(img);
  const double area_ratio = static_cast<double>(thumb.height) * (thumb.width * 3) /
                            static_cast<double>(img.pixel_count());
  EXPECT_NEAR(area_ratio, 0.32, 0.05);  // crop keeps ~32% of the area
  EXPECT_LT(thumb.pixel_count(), img.pixel_count() * 0.32 * 0.40);
  EXPECT_GT(thumb.pixel_count(), 0u);
}

TEST(TinyJpeg, CropPreservesCenterContent) {
  Image img;
  img.width = img.height = 30;
  img.pixels.assign(img.pixel_count(), 0);
  // Bright block dead centre.
  for (int y = 13; y < 17; ++y)
    for (int x = 13; x < 17; ++x)
      img.pixels[static_cast<std::size_t>(y) * 30 + static_cast<std::size_t>(x)] = 255;
  const Image thumb = crop_and_subsample(img);
  int bright = 0;
  for (auto p : thumb.pixels) bright += p == 255;
  EXPECT_GT(bright, 0);
}

TEST(TinyJpeg, CostModelScalesLinearly) {
  const CostModel costs;
  EXPECT_DOUBLE_EQ(costs.decode_cost(2000), 2 * costs.decode_cost(1000));
  EXPECT_GT(costs.decode_cost(4096), costs.encode_cost(4096));
  EXPECT_GT(costs.io_cost(1000), 0.0);
}

TEST(TinyJpeg, GenerateRejectsBadDimensions) {
  EXPECT_THROW(generate_image(1, 0, 5), util::UsageError);
  EXPECT_THROW(generate_image(1, 5, -1), util::UsageError);
}

}  // namespace

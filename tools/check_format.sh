#!/bin/sh
# Check (default) or fix (--fix) formatting of all first-party C++ sources
# against the repo's .clang-format. Skips gracefully when clang-format is
# not installed, so the rest of CI still runs in minimal containers.
#
# Usage: tools/check_format.sh [--fix] [clang-format binary]
set -eu

cd "$(dirname "$0")/.."

mode=check
if [ "${1:-}" = "--fix" ]; then
  mode=fix
  shift
fi
CLANG_FORMAT="${1:-${CLANG_FORMAT:-clang-format}}"

if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping format check" >&2
  exit 0
fi

files=$(find src tools examples tests bench \
  -name '*.cpp' -o -name '*.hpp' 2>/dev/null)

if [ "$mode" = "fix" ]; then
  # shellcheck disable=SC2086
  "$CLANG_FORMAT" -i $files
  echo "check_format: formatted $(echo "$files" | wc -l) file(s)"
  exit 0
fi

bad=0
for f in $files; do
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f" >&2
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "check_format: run tools/check_format.sh --fix" >&2
  exit 1
fi
echo "check_format: all files clean"

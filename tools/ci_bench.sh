#!/bin/sh
# Perf smoke leg: build bench_pipeline_scale, run it at the small trace size
# only, and fail if single-thread convert throughput regressed by more than
# 2x against the checked-in baseline (bench/baseline_pipeline.json). The 2x
# margin absorbs machine-to-machine variance while still catching an
# accidental O(n log n) -> O(n^2) (or allocation-storm) regression.
#
# A second gate runs bench_world_scale --quick=1 and compares the 1024-rank
# task-substrate wall time against bench/baseline_world_scale.json the same
# way — the canary for a thundering-herd (quadratic-dispatch) regression in
# the task scheduler.
#
# A third gate runs bench_tracediff at the small size and compares diff
# throughput against bench/baseline_tracediff.json — the differ pairs
# messages per edge and must stay linear in trace size. The bench also exits
# nonzero if the truncated rank fails to top the suspect list, so this leg
# guards localization correctness too.
#
# A fourth gate runs bench_traced and compares single-session streaming
# ingest throughput against bench/baseline_traced.json; the bench itself
# exits nonzero when the online converter's output diverges from the
# offline converter or its live memory exceeds the documented bound, so
# this leg guards the pilot-traced correctness canaries too.
#
# A fifth gate runs bench_compress and holds the v2 frame-payload
# compression ratio to its absolute 3x floor plus the usual 2x decode
# throughput margin against bench/baseline_compress.json; the bench exits
# nonzero if the v1 and v2 rollups disagree, guarding codec correctness.
#
# A sixth gate runs bench_query_scale: the parallel query engine must
# produce byte-identical results to serial (the bench exits nonzero
# otherwise), warm re-sweeps must be served from the shared FrameCache with
# zero new misses, serial rollup throughput gets the usual 2x margin, and —
# on machines with >= 8 hardware threads — the million-event rollup and
# legend-sweep speedups at 8 workers must hold the documented 3x floor.
#
# The bench itself also exits nonzero if either determinism invariant breaks
# (k-way merge vs sort path, or the thread sweep), so this leg guards
# correctness as well as speed.
#
# Usage: tools/ci_bench.sh [--small=EVENTS]
set -eu

cd "$(dirname "$0")/.."

SMALL=100000
for arg in "$@"; do
  case "$arg" in
    --small=*) SMALL="${arg#--small=}" ;;
    *) echo "usage: $0 [--small=EVENTS]" >&2; exit 2 ;;
  esac
done

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target bench_pipeline_scale bench_world_scale bench_tracediff bench_traced bench_compress bench_query_scale

# Run in a scratch dir so bench_out/ does not pollute the source tree.
RUN_DIR=$(mktemp -d)
trap 'rm -rf "$RUN_DIR"' EXIT
(cd "$RUN_DIR" && "$OLDPWD/build/bench/bench_pipeline_scale" \
  --small="$SMALL" --large=0 --threads-max=2)

# Pull one flat scalar out of a JsonReport file without a JSON parser.
json_num() {
  sed -n "s/^  \"$2\": \([0-9.eE+-]*\),*$/\1/p" "$1"
}

CURRENT=$(json_num "$RUN_DIR/bench_out/BENCH_pipeline.json" convert_events_per_sec_t1_small)
BASELINE=$(json_num bench/baseline_pipeline.json convert_events_per_sec_t1_small)
[ -n "$CURRENT" ] || { echo "FAIL: no convert throughput in bench output" >&2; exit 1; }
[ -n "$BASELINE" ] || { echo "FAIL: no baseline throughput in bench/baseline_pipeline.json" >&2; exit 1; }

echo "convert throughput: current ${CURRENT} events/s, baseline ${BASELINE} events/s"
# Fail when current * 2 < baseline (i.e. >2x slower), in integer arithmetic.
CUR_INT=$(printf '%.0f' "$CURRENT")
BASE_INT=$(printf '%.0f' "$BASELINE")
if [ $((CUR_INT * 2)) -lt "$BASE_INT" ]; then
  echo "FAIL: convert throughput regressed >2x vs baseline" >&2
  exit 1
fi

# World-scale gate: the quick sweep still covers 1024 task-scheduled ranks.
# Wall time is a "lower is better" metric, so the 2x check flips direction.
(cd "$RUN_DIR" && "$OLDPWD/build/bench/bench_world_scale" --quick=1)

TASKS_FEASIBLE=$(sed -n 's/^  "tasks_r1024_feasible": \(.*\),*$/\1/p' \
  "$RUN_DIR/bench_out/BENCH_world_scale.json" | tr -d ',')
[ "$TASKS_FEASIBLE" = "true" ] || {
  echo "FAIL: 1024-rank task-substrate run did not complete" >&2; exit 1; }

CUR_MS=$(json_num "$RUN_DIR/bench_out/BENCH_world_scale.json" tasks_r1024_ms)
BASE_MS=$(json_num bench/baseline_world_scale.json tasks_r1024_ms)
[ -n "$CUR_MS" ] || { echo "FAIL: no tasks_r1024_ms in bench output" >&2; exit 1; }
[ -n "$BASE_MS" ] || {
  echo "FAIL: no tasks_r1024_ms in bench/baseline_world_scale.json" >&2; exit 1; }

echo "1024-rank tasks wall time: current ${CUR_MS} ms, baseline ${BASE_MS} ms"
CUR_MS_INT=$(printf '%.0f' "$CUR_MS")
BASE_MS_INT=$(printf '%.0f' "$BASE_MS")
if [ "$CUR_MS_INT" -gt $((BASE_MS_INT * 2)) ]; then
  echo "FAIL: 1024-rank task-substrate wall time regressed >2x vs baseline" >&2
  exit 1
fi

# Trace-diff gate: small trace only; the bench itself fails the run when the
# truncated rank is not the #1 suspect.
(cd "$RUN_DIR" && "$OLDPWD/build/bench/bench_tracediff" \
  --small="$SMALL" --large=0)

CUR_DIFF=$(json_num "$RUN_DIR/bench_out/BENCH_tracediff.json" diff_records_per_sec_small)
BASE_DIFF=$(json_num bench/baseline_tracediff.json diff_records_per_sec_small)
[ -n "$CUR_DIFF" ] || { echo "FAIL: no diff throughput in bench output" >&2; exit 1; }
[ -n "$BASE_DIFF" ] || {
  echo "FAIL: no diff throughput in bench/baseline_tracediff.json" >&2; exit 1; }

echo "tracediff throughput: current ${CUR_DIFF} records/s, baseline ${BASE_DIFF} records/s"
CUR_DIFF_INT=$(printf '%.0f' "$CUR_DIFF")
BASE_DIFF_INT=$(printf '%.0f' "$BASE_DIFF")
if [ $((CUR_DIFF_INT * 2)) -lt "$BASE_DIFF_INT" ]; then
  echo "FAIL: tracediff throughput regressed >2x vs baseline" >&2
  exit 1
fi

# Streaming-ingest gate: the online converter must keep its byte-identity
# canary (the bench exits nonzero otherwise), stay within its live-memory
# bound, and hold single-session ingest throughput within 2x of baseline.
(cd "$RUN_DIR" && "$OLDPWD/build/bench/bench_traced" --small="$SMALL")

MATCHES=$(sed -n 's/^  "online_matches_offline": \(.*\),*$/\1/p' \
  "$RUN_DIR/bench_out/BENCH_traced.json" | tr -d ',')
[ "$MATCHES" = "true" ] || {
  echo "FAIL: online conversion diverged from offline" >&2; exit 1; }

CUR_ING=$(json_num "$RUN_DIR/bench_out/BENCH_traced.json" ingest_records_per_sec_single)
BASE_ING=$(json_num bench/baseline_traced.json ingest_records_per_sec_single)
[ -n "$CUR_ING" ] || { echo "FAIL: no ingest throughput in bench output" >&2; exit 1; }
[ -n "$BASE_ING" ] || {
  echo "FAIL: no ingest throughput in bench/baseline_traced.json" >&2; exit 1; }

echo "traced ingest throughput: current ${CUR_ING} records/s, baseline ${BASE_ING} records/s"
CUR_ING_INT=$(printf '%.0f' "$CUR_ING")
BASE_ING_INT=$(printf '%.0f' "$BASE_ING")
if [ $((CUR_ING_INT * 2)) -lt "$BASE_ING_INT" ]; then
  echo "FAIL: traced ingest throughput regressed >2x vs baseline" >&2
  exit 1
fi

# Compression gate: the v2 frame-payload ratio must hold its floor (the
# bench itself exits nonzero if the v1/v2 rollups disagree), and v2 decode
# throughput gets the usual 2x regression margin. The ratio is a property
# of the codec, not the machine, so it is gated against an absolute floor
# rather than the baseline file.
(cd "$RUN_DIR" && "$OLDPWD/build/bench/bench_compress" \
  --small="$SMALL" --large=0 --huge=0)

CUR_RATIO=$(json_num "$RUN_DIR/bench_out/BENCH_compress.json" payload_ratio_small)
[ -n "$CUR_RATIO" ] || { echo "FAIL: no payload ratio in bench output" >&2; exit 1; }
echo "v2 payload ratio: current ${CUR_RATIO}x (floor 3x)"
# Portable float-vs-3 compare without bc: scale by 100 via awk.
CUR_RATIO_X100=$(awk -v r="$CUR_RATIO" 'BEGIN { printf "%.0f", r * 100 }')
if [ "$CUR_RATIO_X100" -lt 300 ]; then
  echo "FAIL: v2 frame-payload ratio ${CUR_RATIO}x below the 3x floor" >&2
  exit 1
fi

CUR_DEC=$(json_num "$RUN_DIR/bench_out/BENCH_compress.json" decode_mb_per_sec_v2_small)
BASE_DEC=$(json_num bench/baseline_compress.json decode_mb_per_sec_v2_small)
[ -n "$CUR_DEC" ] || { echo "FAIL: no v2 decode throughput in bench output" >&2; exit 1; }
[ -n "$BASE_DEC" ] || {
  echo "FAIL: no v2 decode throughput in bench/baseline_compress.json" >&2; exit 1; }

echo "v2 decode throughput: current ${CUR_DEC} MB/s, baseline ${BASE_DEC} MB/s"
CUR_DEC_INT=$(printf '%.0f' "$CUR_DEC")
BASE_DEC_INT=$(printf '%.0f' "$BASE_DEC")
if [ $((CUR_DEC_INT * 2)) -lt "$BASE_DEC_INT" ]; then
  echo "FAIL: v2 decode throughput regressed >2x vs baseline" >&2
  exit 1
fi

# Parallel query-engine gate: the bench exits nonzero when any parallel
# result diverges from serial, so a pass already certifies byte-identity.
(cd "$RUN_DIR" && "$OLDPWD/build/bench/bench_query_scale" --small="$SMALL")

QS_JSON="$RUN_DIR/bench_out/BENCH_query_scale.json"
QS_IDENTICAL=$(sed -n 's/^  "parallel_matches_serial": \(.*\),*$/\1/p' \
  "$QS_JSON" | tr -d ',')
[ "$QS_IDENTICAL" = "true" ] || {
  echo "FAIL: parallel query results diverged from serial" >&2; exit 1; }

QS_CACHE=$(sed -n 's/^  "cache_hit_canary": \(.*\),*$/\1/p' "$QS_JSON" | tr -d ',')
[ "$QS_CACHE" = "true" ] || {
  echo "FAIL: warm re-sweep was not served from the shared FrameCache" >&2
  exit 1
}

CUR_ROLLUP=$(json_num "$QS_JSON" rollup_events_per_sec_t1_small)
BASE_ROLLUP=$(json_num bench/baseline_query_scale.json rollup_events_per_sec_t1_small)
[ -n "$CUR_ROLLUP" ] || { echo "FAIL: no rollup throughput in bench output" >&2; exit 1; }
[ -n "$BASE_ROLLUP" ] || {
  echo "FAIL: no rollup throughput in bench/baseline_query_scale.json" >&2; exit 1; }

echo "serial rollup throughput: current ${CUR_ROLLUP} steps/s, baseline ${BASE_ROLLUP} steps/s"
CUR_ROLLUP_INT=$(printf '%.0f' "$CUR_ROLLUP")
BASE_ROLLUP_INT=$(printf '%.0f' "$BASE_ROLLUP")
if [ $((CUR_ROLLUP_INT * 2)) -lt "$BASE_ROLLUP_INT" ]; then
  echo "FAIL: serial rollup throughput regressed >2x vs baseline" >&2
  exit 1
fi

# The 3x-at-8-workers floor is a claim about parallel hardware; a 1- or
# 2-core CI runner cannot exhibit it, so the gate arms only at >= 8
# hardware threads (the configuration the docs quote).
QS_HW=$(json_num "$QS_JSON" hardware_threads)
if [ -n "$QS_HW" ] && [ "$QS_HW" -ge 8 ]; then
  QS_ROLLUP_SPD=$(json_num "$QS_JSON" rollup_speedup_t8_large)
  QS_SWEEP_SPD=$(json_num "$QS_JSON" sweep_speedup_t8_large)
  echo "8-worker speedup (10^6 events): rollup ${QS_ROLLUP_SPD}x, sweep ${QS_SWEEP_SPD}x (floor 3x)"
  for spd in "$QS_ROLLUP_SPD" "$QS_SWEEP_SPD"; do
    [ -n "$spd" ] || { echo "FAIL: missing large-size speedup in bench output" >&2; exit 1; }
    SPD_X100=$(awk -v s="$spd" 'BEGIN { printf "%.0f", s * 100 }')
    if [ "$SPD_X100" -lt 300 ]; then
      echo "FAIL: 8-worker speedup ${spd}x below the 3x floor" >&2
      exit 1
    fi
  done
else
  echo "8-worker speedup gate skipped (hardware_threads=${QS_HW:-unknown} < 8)"
fi
echo "perf smoke leg OK"

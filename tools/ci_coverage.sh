#!/bin/sh
# Build with PILOT_COVERAGE=ON, run the test suite, and summarize line
# coverage for the fault-injection and replay subsystems (the code paths the
# chaos/fuzz harness exists to exercise).
#
# Uses gcovr when available; otherwise falls back to plain gcov and a small
# awk rollup, so the script works on boxes with only the base toolchain.
#
# Usage: tools/ci_coverage.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."
BUILD=build-coverage

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Debug -DPILOT_COVERAGE=ON
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" "$@"

if command -v gcovr > /dev/null 2>&1; then
  gcovr --root . --filter 'src/fault/' --filter 'src/replay/' \
    --object-directory "$BUILD" --print-summary
  exit 0
fi

# gcov fallback: process each instrumented object's notes file and total the
# per-source "Lines executed" figures for the subsystems of interest.
echo "gcovr not found; falling back to gcov"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
find "$BUILD" -name '*.gcno' \
  \( -path '*fault*' -o -path '*replay*' \) | while read -r gcno; do
  (cd "$TMP" && gcov -n "$gcno" 2> /dev/null || true)
done > "$TMP/gcov.out"

awk '
  /^File / {
    file = $2
    gsub(/\x27/, "", file)
  }
  /^Lines executed:/ && file ~ /src\/(fault|replay)\// {
    pct = $2; sub(/executed:/, "", pct); sub(/%/, "", pct)
    n = $4
    covered[file] = pct * n / 100
    total[file] = n
  }
  END {
    lines = 0; hit = 0
    for (f in total) {
      printf "%6.1f%%  %5d lines  %s\n", 100 * covered[f] / total[f], total[f], f
      lines += total[f]; hit += covered[f]
    }
    if (lines == 0) { print "no coverage data for src/fault or src/replay"; exit 1 }
    printf "TOTAL  %.1f%% of %d lines (src/fault + src/replay)\n", 100 * hit / lines, lines
  }' "$TMP/gcov.out"

#!/bin/sh
# Configure, build, and test the whole tree under UndefinedBehaviorSanitizer
# (the cmake preset "sanitize-undefined"), then run the record/replay tests
# and the fault-chaos matrix under ThreadSanitizer ("sanitize-thread") — the
# replay engine and the fault injector both coordinate every rank thread, so
# their tests are the highest-value TSan targets.
# Any sanitizer report fails the run.
#
# Usage: tools/ci_sanitize.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset sanitize-undefined
cmake --build --preset sanitize-undefined -j "$(nproc)"

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --preset sanitize-undefined "$@"

cmake --preset sanitize-thread
cmake --build --preset sanitize-thread -j "$(nproc)" \
  --target pilot_replay_test mpisim_test fault_test fault_chaos_test
TSAN_OPTIONS="halt_on_error=1" \
  ctest --preset sanitize-thread \
  -R 'Replay|Prl|CrossCheck|Mpisim|Fault|ChaosMatrix' "$@"

#!/bin/sh
# Configure, build, and test the whole tree under UndefinedBehaviorSanitizer
# (the cmake preset "sanitize-undefined"), then run the record/replay tests,
# the fault-chaos matrix, and the threaded clog2->slog2 converter under
# ThreadSanitizer ("sanitize-thread") — the replay engine and the fault
# injector coordinate every rank thread, and the converter fans work out
# across a worker pool, so their tests are the highest-value TSan targets.
# (The PipelineScale suite converts with --threads=8; its million-event
# PipelineLarge sibling stays out of the sanitizer legs by name.)
# Any sanitizer report fails the run.
#
# Usage: tools/ci_sanitize.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset sanitize-undefined
cmake --build --preset sanitize-undefined -j "$(nproc)"

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --preset sanitize-undefined "$@"

cmake --preset sanitize-thread
cmake --build --preset sanitize-thread -j "$(nproc)" \
  --target pilot_replay_test mpisim_test fault_test fault_chaos_test \
  pipeline_scale_test pilot_tasks_scale_test tracediff_localize_test \
  traced_test slog2_v2_roundtrip_test tracedigest_test query_parallel_test
# 'Mpisim' also picks up the MpisimTasks fiber-substrate suite, and
# TasksSubstrate runs the threads-vs-tasks comparison under TSan (the fiber
# side is annotated via __tsan_*_fiber). The thousand-rank TasksScale suite
# stays out by name — sanitizer slowdown would make it a timeout, not a test.
# 'TraceDiffLocalize' diffs whole faulted pilot jobs against their clean
# twin, driving the analyzer from the same process that ran the rank threads.
# 'Traced\.' covers the pilot-traced session/pool concurrency (8 producer
# threads + a query thread over the ingest worker pool); its million-event
# TracedScale sibling stays out by name like the other heavy suites.
# 'V2Codec|V2Differential|V2Online' exercise the columnar v2 frame codec
# through the threaded converter and the online seal path, and 'TraceDigest'
# drives pilot-tracedigest's analysis over both encodings; the million-event
# V2Scale sibling stays out by name like the other heavy suites.
# 'QueryParallel\.' runs every sharded query path (trace build, rollups,
# combinators, window sweeps, vector clocks) against its serial twin, and
# 'FrameCacheConcurrency' hammers the process-wide decode cache from
# concurrent sessions; the million-event QueryParallelScale sibling stays
# out by name like the other heavy suites.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --preset sanitize-thread \
  -R 'Replay|Prl|CrossCheck|Mpisim|Fault|ChaosMatrix|PipelineScale\.|TasksSubstrate\.|TraceDiffLocalize\.|Traced\.|V2Codec|V2Differential|V2Online|TraceDigest|QueryParallel\.|FrameCacheConcurrency' "$@"

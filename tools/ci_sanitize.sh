#!/bin/sh
# Configure, build, and test the whole tree under UndefinedBehaviorSanitizer
# (the cmake preset "sanitize-undefined"). Any UB report fails the run.
#
# Usage: tools/ci_sanitize.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset sanitize-undefined
cmake --build --preset sanitize-undefined -j "$(nproc)"

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --preset sanitize-undefined "$@"

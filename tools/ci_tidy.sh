#!/bin/sh
# Run clang-tidy (the repo's .clang-tidy profile: bugprone-*, performance-*,
# safe readability checks) over all first-party C++ translation units using
# the compile_commands.json from the main build tree. Skips gracefully when
# clang-tidy is not installed, so the rest of CI still runs in minimal
# containers.
#
# Usage: tools/ci_tidy.sh [path-filter-regex] [clang-tidy binary]
#   tools/ci_tidy.sh                 # whole tree
#   tools/ci_tidy.sh 'src/analyze'   # one subsystem
set -eu

cd "$(dirname "$0")/.."

FILTER="${1:-.}"
CLANG_TIDY="${2:-${CLANG_TIDY:-clang-tidy}}"

if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "ci_tidy: $CLANG_TIDY not found; skipping tidy check" >&2
  exit 0
fi

# Tidy needs a compilation database; the main tree exports one.
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
[ -f build/compile_commands.json ] || {
  echo "ci_tidy: build/compile_commands.json missing" >&2
  exit 1
}

files=$(find src tools bench -name '*.cpp' 2>/dev/null | grep -E "$FILTER" || true)
[ -n "$files" ] || { echo "ci_tidy: no files match '$FILTER'" >&2; exit 2; }

bad=0
for f in $files; do
  if ! "$CLANG_TIDY" -p build --quiet "$f" 2>/dev/null; then
    echo "tidy findings in: $f" >&2
    bad=1
  fi
done
if [ "$bad" -ne 0 ]; then
  echo "ci_tidy: findings above; fix or suppress with NOLINT(check-name)" >&2
  exit 1
fi
echo "ci_tidy: $(echo "$files" | wc -l) file(s) clean"

// pilot-clog2print: dump a CLOG-2 trace as text — the paper's preferred way
// to diagnose problems with log contents before conversion (Section II-A).
#include <cstdio>
#include <exception>

#include "clog2/clog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr, "usage: %s <trace.clog2>\n", args.program().c_str());
    return 2;
  }
  const std::string& path = args.positional()[0];
  try {
    // Streams through a fixed-size window (RSS independent of trace size);
    // validation runs before any output, so truncated or corrupt traces
    // still fail loudly with the file named and no half-printed dump.
    clog2::stream_text(path,
                       [](const std::string& chunk) { std::fputs(chunk.c_str(), stdout); });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

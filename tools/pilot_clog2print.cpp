// pilot-clog2print: dump a CLOG-2 trace as text — the paper's preferred way
// to diagnose problems with log contents before conversion (Section II-A).
#include <cstdio>
#include <exception>

#include "clog2/clog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr, "usage: %s <trace.clog2>\n", args.program().c_str());
    return 2;
  }
  const auto file = clog2::read_file(args.positional()[0]);
  std::fputs(clog2::to_text(file).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

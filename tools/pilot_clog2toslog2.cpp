// pilot-clog2toslog2: the conversion step of the paper's pipeline. Reports
// the same class of diagnostics the real clog2TOslog2 emits — including the
// "Equal Drawables" warning of Section III-C — and exposes the frame-size
// conversion parameter.
#include <cstdio>
#include <exception>
#include <string>

#include "slog2/slog2.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <trace.clog2> [--out=trace.slog2] "
                 "[--framesize=BYTES] [--maxdepth=N] [--threads=N] "
                 "[--frame-encoding=v1|v2] [--quiet]\n",
                 args.program().c_str());
    return 2;
  }
  const std::string in_path = args.positional()[0];
  std::string out_path = args.get_or("out", "");
  if (out_path.empty()) {
    out_path = in_path;
    if (util::ends_with(out_path, ".clog2"))
      out_path.resize(out_path.size() - 6);
    out_path += ".slog2";
  }

  slog2::ConvertOptions opts;
  opts.frame_size = static_cast<std::uint64_t>(args.get_int_or("framesize", 64 * 1024));
  opts.max_depth = static_cast<int>(args.get_int_or("maxdepth", 24));
  // 0 = hardware concurrency; output is byte-identical at any thread count.
  opts.threads = util::parse_threads(args);
  // v1 = fixed-width record payloads (default, readable by old tools);
  // v2 = columnar delta-varint payloads (smaller, needs a v2-aware reader).
  opts.encoding = slog2::parse_frame_encoding(args.get_or("frame-encoding", "v1"));
  const bool quiet = args.has("quiet");

  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }

  const auto clog = clog2::read_file(in_path);
  std::vector<std::string> warnings;
  const auto slog = slog2::convert(clog, opts, &warnings);
  slog2::write_file(out_path, slog);

  if (!quiet) {
    for (const auto& w : warnings) std::fprintf(stderr, "warning: %s\n", w.c_str());
    std::printf("%s", slog2::to_text(slog).c_str());
    std::printf("wrote %s\n", out_path.c_str());
  }
  return slog.stats.clean() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-genfixtures: (re)generate the golden-trace corpus under
// tests/fixtures/. Every byte is derived from fixed literals — no live run,
// no clocks — so the output is bit-stable across machines and reruns, which
// is what lets the parser fuzz tests and the salvage tests assert against
// checked-in files instead of regenerating traces at test time.
//
//   tiny.clog2            2-rank trace: defs, consts, syncs, a compute state
//                         per rank, one message pair, one bubble
//   tiny.slog2            the same trace through the CLOG-2 -> SLOG-2
//                         converter
//   tiny.v2.slog2         the same conversion with the v2 (columnar
//                         delta-varint) frame payload encoding
//   tiny.prl              a 2-rank replay log exercising every event kind
//   salvage.defs.spill    robust-mode spill set for mpe::salvage: the
//   salvage.rank0.spill   definition stream plus two per-rank record
//   salvage.rank1.spill   streams (bare CLOG-2 records, no file header)
//   messy.clog2           3-rank trace that trips most TCxxx checks at once
//                         (unmatched halves, clock anomaly, wildcard race,
//                         interval bugs, wait cycle) — the tracecheck golden
//   diffpair.a.clog2      reference / suspect pair for pilot-tracediff: b is
//   diffpair.b.clog2      a with rank 2's tail cut and one event swapped
//
// Usage: pilot-genfixtures [outdir]   (default: tests/fixtures)
#include <cstdio>
#include <exception>
#include <filesystem>

#include "clog2/clog2.hpp"
#include "replay/prl.hpp"
#include "slog2/slog2.hpp"
#include "util/bytebuf.hpp"
#include "util/cli.hpp"
#include "util/fs.hpp"

namespace {

clog2::File make_tiny_clog2() {
  clog2::File f;
  f.nranks = 2;
  f.comment = "golden fixture (pilot-genfixtures)";
  f.records = {
      clog2::EventDef{10, "Arrival", "yellow", "Msg: %d"},
      clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
      clog2::ConstDef{"nranks", 2},
      clog2::SyncRec{0, 0.0, 0.0},
      clog2::SyncRec{1, 0.001, 0.0},
      clog2::EventRec{0.010, 0, 11, ""},                 // rank 0 compute begin
      clog2::EventRec{0.012, 1, 11, ""},                 // rank 1 compute begin
      clog2::MsgRec{0.020, 0, clog2::MsgRec::Kind::kSend, 1, 7, 16},
      clog2::EventRec{0.024, 1, 10, "Msg: 7"},           // arrival bubble
      clog2::MsgRec{0.025, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 16},
      clog2::EventRec{0.030, 1, 12, ""},                 // rank 1 compute end
      clog2::EventRec{0.032, 0, 12, ""},                 // rank 0 compute end
      clog2::SyncRec{0, 0.040, 0.040},
      clog2::SyncRec{1, 0.041, 0.040},
  };
  return f;
}

replay::Log make_tiny_prl() {
  replay::Log log;
  log.per_rank = {
      {
          {replay::EventKind::kRecvMatch, 1, 0, 0},
          {replay::EventKind::kSelect, 2, 1, 0},
          {replay::EventKind::kBarrier, 0, 0, 0},
      },
      {
          {replay::EventKind::kProbeMatch, 0, 0, 0},
          {replay::EventKind::kTrySelect, 2, -1, 0},
          {replay::EventKind::kHasData, 3, 1, 0},
          {replay::EventKind::kBarrier, 1, 0, 0},
      },
  };
  return log;
}

/// Three ranks, every common tracecheck disease in one file: a matched pair
/// plus a concurrent same-destination pair (TC201), an orphan send (TC101)
/// and an orphan receive (TC102), a matched pair whose halves are stamped
/// out of order (TC103), interval bugs of every kind (TC401/402/404, plus a
/// never-ended PI_Read for TC403), and a two-rank terminal Wait cycle
/// (TC301). Timestamps are literals, so the golden verdict is bit-stable.
clog2::File make_messy_clog2() {
  using Kind = clog2::MsgRec::Kind;
  clog2::File f;
  f.nranks = 3;
  f.comment = "messy fixture (pilot-genfixtures)";
  f.records = {
      clog2::EventDef{10, "Arrival", "yellow", "Msg: %d"},
      clog2::EventDef{20, "Wait", "orange", "%s"},
      clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
      clog2::StateDef{2, 13, 14, "PI_Read", "red", ""},
      clog2::ConstDef{"nranks", 3},
      clog2::SyncRec{0, 0.0, 0.0},
      clog2::SyncRec{1, 0.001, 0.0},
      clog2::SyncRec{2, 0.001, 0.0},
      clog2::EventRec{0.010, 0, 11, ""},  // compute begins
      clog2::EventRec{0.011, 1, 11, ""},
      clog2::EventRec{0.012, 2, 11, ""},
      // Concurrent sends from ranks 0 and 2 to rank 1 on one tag: TC201.
      clog2::MsgRec{0.020, 0, Kind::kSend, 1, 5, 8},
      clog2::MsgRec{0.021, 2, Kind::kSend, 1, 5, 8},
      clog2::MsgRec{0.025, 1, Kind::kRecv, 0, 5, 8},
      clog2::MsgRec{0.026, 1, Kind::kRecv, 2, 5, 8},
      // Orphan send (TC101) and orphan receive (TC102).
      clog2::MsgRec{0.030, 0, Kind::kSend, 2, 9, 4},
      clog2::MsgRec{0.031, 1, Kind::kRecv, 2, 7, 4},
      // Matched, but the receive is stamped before the send: TC103.
      clog2::MsgRec{0.040, 0, Kind::kSend, 1, 8, 4},
      clog2::MsgRec{0.035, 1, Kind::kRecv, 0, 8, 4},
      // PI_Read end with no start on rank 2: TC401.
      clog2::EventRec{0.045, 2, 14, ""},
      // Negative-duration PI_Read on rank 2: TC402.
      clog2::EventRec{0.050, 2, 13, ""},
      clog2::EventRec{0.048, 2, 14, ""},
      // Compute re-entered on rank 0 while still open: TC404.
      clog2::EventRec{0.052, 0, 11, ""},
      clog2::EventRec{0.054, 0, 12, ""},
      clog2::EventRec{0.056, 0, 12, ""},
      // PI_Read on rank 1 that never ends: TC403.
      clog2::EventRec{0.058, 1, 13, ""},
      // Terminal Wait cycle between ranks 1 and 2: TC301.
      clog2::EventRec{0.060, 2, 20, "C1<-R1"},
      clog2::EventRec{0.061, 1, 20, "C2<-R2"},
  };
  return f;
}

/// Reference / suspect pair for the tracediff golden. The suspect drops
/// rank 2's last two records (a crashed-rank shape) and swaps the payload
/// size of one rank-1 message (a first-divergent-event shape).
std::pair<clog2::File, clog2::File> make_diffpair() {
  using Kind = clog2::MsgRec::Kind;
  clog2::File a;
  a.nranks = 3;
  a.comment = "diffpair reference (pilot-genfixtures)";
  a.records = {
      clog2::EventDef{10, "Round", "yellow", "L%d main i%d"},
      clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
      clog2::SyncRec{0, 0.0, 0.0},
      clog2::SyncRec{1, 0.001, 0.0},
      clog2::SyncRec{2, 0.001, 0.0},
      clog2::EventRec{0.010, 0, 10, "L42 main i0"},
      clog2::EventRec{0.011, 1, 11, ""},
      clog2::EventRec{0.012, 2, 11, ""},
      clog2::MsgRec{0.020, 0, Kind::kSend, 1, 3, 8},
      clog2::MsgRec{0.022, 1, Kind::kRecv, 0, 3, 8},
      clog2::MsgRec{0.024, 0, Kind::kSend, 2, 3, 8},
      clog2::MsgRec{0.026, 2, Kind::kRecv, 0, 3, 8},
      clog2::EventRec{0.028, 1, 10, "L57 worker i1"},
      clog2::MsgRec{0.030, 1, Kind::kSend, 0, 4, 8},
      clog2::MsgRec{0.032, 0, Kind::kRecv, 1, 4, 8},
      clog2::EventRec{0.040, 1, 12, ""},
      clog2::MsgRec{0.044, 2, Kind::kSend, 0, 4, 8},
      clog2::MsgRec{0.046, 0, Kind::kRecv, 2, 4, 8},
      clog2::EventRec{0.050, 2, 12, ""},
  };
  clog2::File b = a;
  b.comment = "diffpair suspect (pilot-genfixtures)";
  // Swap one matched message's size on rank 1 (and its recv half on rank 0).
  b.records[13] = clog2::MsgRec{0.030, 1, Kind::kSend, 0, 4, 16};
  b.records[14] = clog2::MsgRec{0.032, 0, Kind::kRecv, 1, 4, 16};
  // Cut rank 2's tail: the send at 0.044 and everything after it on rank 2.
  b.records.erase(b.records.begin() + 16);  // send 2->0
  b.records.pop_back();                     // compute end on rank 2
  return {a, b};
}

void write_records(const std::filesystem::path& path,
                   const std::vector<clog2::Record>& records) {
  util::ByteWriter w;
  for (const auto& r : records) clog2::append_record(w, r);
  util::write_file(path, w.bytes());
}

void make_salvage_spills(const std::filesystem::path& dir) {
  write_records(dir / "salvage.defs.spill",
                {
                    clog2::EventDef{10, "Arrival", "yellow", "Msg: %d"},
                    clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
                });
  write_records(dir / "salvage.rank0.spill",
                {
                    clog2::SyncRec{0, 0.0, 0.0},
                    clog2::EventRec{0.010, 0, 11, ""},
                    clog2::MsgRec{0.020, 0, clog2::MsgRec::Kind::kSend, 1, 7, 16},
                    clog2::EventRec{0.032, 0, 12, ""},
                });
  write_records(dir / "salvage.rank1.spill",
                {
                    clog2::SyncRec{1, 0.001, 0.0},
                    clog2::EventRec{0.012, 1, 11, ""},
                    clog2::EventRec{0.024, 1, 10, "Msg: 7"},
                    clog2::MsgRec{0.025, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 16},
                    // No compute-end: rank 1 "died" mid-run, like a real
                    // salvage scenario.
                });
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() > 1 || args.has("help")) {
    std::fprintf(stderr, "usage: %s [outdir]   (default: tests/fixtures)\n",
                 args.program().c_str());
    return 2;
  }
  const std::filesystem::path dir =
      args.positional().empty() ? "tests/fixtures" : args.positional()[0];
  std::filesystem::create_directories(dir);

  const clog2::File tiny = make_tiny_clog2();
  clog2::write_file(dir / "tiny.clog2", tiny);
  slog2::write_file(dir / "tiny.slog2", slog2::convert(tiny));
  {
    slog2::ConvertOptions co;
    co.encoding = slog2::FrameEncoding::kV2;
    slog2::write_file(dir / "tiny.v2.slog2", slog2::convert(tiny, co));
  }
  replay::write_file(dir / "tiny.prl", make_tiny_prl());
  make_salvage_spills(dir);
  clog2::write_file(dir / "messy.clog2", make_messy_clog2());
  const auto [diff_a, diff_b] = make_diffpair();
  clog2::write_file(dir / "diffpair.a.clog2", diff_a);
  clog2::write_file(dir / "diffpair.b.clog2", diff_b);

  std::printf(
      "wrote tiny.clog2 tiny.slog2 tiny.v2.slog2 tiny.prl salvage.*.spill "
      "messy.clog2 diffpair.{a,b}.clog2 -> %s\n",
      dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-genfixtures: (re)generate the golden-trace corpus under
// tests/fixtures/. Every byte is derived from fixed literals — no live run,
// no clocks — so the output is bit-stable across machines and reruns, which
// is what lets the parser fuzz tests and the salvage tests assert against
// checked-in files instead of regenerating traces at test time.
//
//   tiny.clog2            2-rank trace: defs, consts, syncs, a compute state
//                         per rank, one message pair, one bubble
//   tiny.slog2            the same trace through the CLOG-2 -> SLOG-2
//                         converter
//   tiny.prl              a 2-rank replay log exercising every event kind
//   salvage.defs.spill    robust-mode spill set for mpe::salvage: the
//   salvage.rank0.spill   definition stream plus two per-rank record
//   salvage.rank1.spill   streams (bare CLOG-2 records, no file header)
//
// Usage: pilot-genfixtures [outdir]   (default: tests/fixtures)
#include <cstdio>
#include <exception>
#include <filesystem>

#include "clog2/clog2.hpp"
#include "replay/prl.hpp"
#include "slog2/slog2.hpp"
#include "util/bytebuf.hpp"
#include "util/cli.hpp"
#include "util/fs.hpp"

namespace {

clog2::File make_tiny_clog2() {
  clog2::File f;
  f.nranks = 2;
  f.comment = "golden fixture (pilot-genfixtures)";
  f.records = {
      clog2::EventDef{10, "Arrival", "yellow", "Msg: %d"},
      clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
      clog2::ConstDef{"nranks", 2},
      clog2::SyncRec{0, 0.0, 0.0},
      clog2::SyncRec{1, 0.001, 0.0},
      clog2::EventRec{0.010, 0, 11, ""},                 // rank 0 compute begin
      clog2::EventRec{0.012, 1, 11, ""},                 // rank 1 compute begin
      clog2::MsgRec{0.020, 0, clog2::MsgRec::Kind::kSend, 1, 7, 16},
      clog2::EventRec{0.024, 1, 10, "Msg: 7"},           // arrival bubble
      clog2::MsgRec{0.025, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 16},
      clog2::EventRec{0.030, 1, 12, ""},                 // rank 1 compute end
      clog2::EventRec{0.032, 0, 12, ""},                 // rank 0 compute end
      clog2::SyncRec{0, 0.040, 0.040},
      clog2::SyncRec{1, 0.041, 0.040},
  };
  return f;
}

replay::Log make_tiny_prl() {
  replay::Log log;
  log.per_rank = {
      {
          {replay::EventKind::kRecvMatch, 1, 0, 0},
          {replay::EventKind::kSelect, 2, 1, 0},
          {replay::EventKind::kBarrier, 0, 0, 0},
      },
      {
          {replay::EventKind::kProbeMatch, 0, 0, 0},
          {replay::EventKind::kTrySelect, 2, -1, 0},
          {replay::EventKind::kHasData, 3, 1, 0},
          {replay::EventKind::kBarrier, 1, 0, 0},
      },
  };
  return log;
}

void write_records(const std::filesystem::path& path,
                   const std::vector<clog2::Record>& records) {
  util::ByteWriter w;
  for (const auto& r : records) clog2::append_record(w, r);
  util::write_file(path, w.bytes());
}

void make_salvage_spills(const std::filesystem::path& dir) {
  write_records(dir / "salvage.defs.spill",
                {
                    clog2::EventDef{10, "Arrival", "yellow", "Msg: %d"},
                    clog2::StateDef{1, 11, 12, "Compute", "gray", ""},
                });
  write_records(dir / "salvage.rank0.spill",
                {
                    clog2::SyncRec{0, 0.0, 0.0},
                    clog2::EventRec{0.010, 0, 11, ""},
                    clog2::MsgRec{0.020, 0, clog2::MsgRec::Kind::kSend, 1, 7, 16},
                    clog2::EventRec{0.032, 0, 12, ""},
                });
  write_records(dir / "salvage.rank1.spill",
                {
                    clog2::SyncRec{1, 0.001, 0.0},
                    clog2::EventRec{0.012, 1, 11, ""},
                    clog2::EventRec{0.024, 1, 10, "Msg: 7"},
                    clog2::MsgRec{0.025, 1, clog2::MsgRec::Kind::kRecv, 0, 7, 16},
                    // No compute-end: rank 1 "died" mid-run, like a real
                    // salvage scenario.
                });
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() > 1 || args.has("help")) {
    std::fprintf(stderr, "usage: %s [outdir]   (default: tests/fixtures)\n",
                 args.program().c_str());
    return 2;
  }
  const std::filesystem::path dir =
      args.positional().empty() ? "tests/fixtures" : args.positional()[0];
  std::filesystem::create_directories(dir);

  const clog2::File tiny = make_tiny_clog2();
  clog2::write_file(dir / "tiny.clog2", tiny);
  slog2::write_file(dir / "tiny.slog2", slog2::convert(tiny));
  replay::write_file(dir / "tiny.prl", make_tiny_prl());
  make_salvage_spills(dir);

  std::printf("wrote tiny.clog2 tiny.slog2 tiny.prl salvage.*.spill -> %s\n",
              dir.string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

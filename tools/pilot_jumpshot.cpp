// pilot-jumpshot: the headless viewer. Renders an SLOG-2 window to SVG and
// prints the legend table (count / incl / excl, like Jumpshot's legend
// window); also exposes the search-and-scan facility and per-rank window
// statistics (load-imbalance view).
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>

#include "jumpshot/render.hpp"
#include "jumpshot/search.hpp"
#include "jumpshot/stats.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <trace.slog2> [--out=view.svg] [--t0=S] [--t1=S]\n"
                 "       [--width=PX] [--title=TEXT] [--no-legend] [--windowed]\n"
                 "       [--lod-budget=BYTES] [--search=NEEDLE] [--rank=R] [--stats]\n"
                 "       [--threads=N]  (N workers for frame decode / legend\n"
                 "       sweeps, 0 = hardware; output is byte-identical)\n",
                 args.program().c_str());
    return 2;
  }

  jumpshot::RenderOptions opts;
  opts.t0 = args.get_double_or("t0", opts.t0);
  opts.t1 = args.get_double_or("t1", opts.t1);
  opts.width = static_cast<int>(args.get_int_or("width", opts.width));
  opts.title = args.get_or("title", args.positional()[0]);
  opts.draw_legend = !args.has("no-legend");
  opts.lod_payload_budget = static_cast<std::uint64_t>(args.get_int_or(
      "lod-budget", static_cast<long long>(opts.lod_payload_budget)));
  opts.threads = util::parse_threads(args);

  // --windowed: render through the Navigator, decoding only the frames the
  // window touches (and none at all once the preview LOD kicks in). The
  // whole-file load below never happens.
  if (args.has("windowed")) {
    const std::string out = args.get_or("out", "view.svg");
    for (const auto& k : args.unused_keys()) {
      std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
      return 2;
    }
    slog2::Navigator nav(args.positional()[0]);
    jumpshot::render_to_file(out, nav, opts);
    std::printf("wrote %s (decoded %zu of %zu frames)\n", out.c_str(),
                nav.frames_decoded(), nav.total_frames());
    return 0;
  }

  const auto file = slog2::read_file(args.positional()[0]);

  if (auto needle = args.get("search")) {
    jumpshot::SearchQuery query;
    query.needle = *needle;
    if (args.has("rank"))
      query.rank = static_cast<std::int32_t>(args.get_int_or("rank", 0));
    const auto hits = jumpshot::search(file, query);
    for (const auto& h : hits) {
      const char* kind = h.kind == jumpshot::SearchHit::Kind::kState   ? "state"
                         : h.kind == jumpshot::SearchHit::Kind::kEvent ? "event"
                                                                       : "arrow";
      std::printf("%-6s %-20s rank=%d [%s .. %s] %s\n", kind,
                  h.category_name.c_str(), h.rank,
                  util::human_seconds(h.start_time).c_str(),
                  util::human_seconds(h.end_time).c_str(), h.text.c_str());
    }
    std::printf("%zu hit(s)\n", hits.size());
    return 0;
  }

  if (auto statsvg = args.get("statsvg")) {
    jumpshot::StatsRenderOptions sopts;
    sopts.t0 = opts.t0;
    sopts.t1 = opts.t1;
    sopts.width = opts.width;
    sopts.title = opts.title + " (statistics)";
    jumpshot::render_stats_to_file(*statsvg, file, sopts);
    std::printf("wrote %s\n", statsvg->c_str());
    return 0;
  }

  if (args.has("stats")) {
    const double a = std::isnan(opts.t0) ? file.t_min : opts.t0;
    const double b = std::isnan(opts.t1) ? file.t_max : opts.t1;
    const auto ws = jumpshot::window_stats(file, a, b);
    std::printf("window [%s .. %s]  imbalance=%.3f\n",
                util::human_seconds(a).c_str(), util::human_seconds(b).c_str(),
                ws.imbalance());
    for (const auto& r : ws.ranks) {
      std::printf("  rank %-3d busy=%-12s arrows in/out = %llu/%llu\n", r.rank,
                  util::human_seconds(r.total_state_time()).c_str(),
                  static_cast<unsigned long long>(r.arrows_in),
                  static_cast<unsigned long long>(r.arrows_out));
    }
    return 0;
  }

  const std::string out = args.get_or("out", "view.svg");
  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }
  jumpshot::render_to_file(out, file, opts);
  std::printf("wrote %s\n", out.c_str());
  std::fputs(jumpshot::legend_to_text(jumpshot::legend(
                 file, jumpshot::LegendSort::kByInclusive, opts.threads))
                 .c_str(),
             stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

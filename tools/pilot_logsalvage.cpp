// pilot-logsalvage: recover an MPE trace after PI_Abort, from the per-rank
// spill files written by robust mode (-pisvc=j -pirobust). Implements the
// paper's stated future work ("it would be better if the MPE log could be
// finalized in all cases").
#include <cstdio>
#include <exception>

#include "mpe/mpe.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <spill-base> [--out=salvaged.clog2]\n"
                 "  <spill-base> is the -piout/-piname base, e.g. ./pilot\n",
                 args.program().c_str());
    return 2;
  }
  const std::string base = args.positional()[0];
  const std::string out = args.get_or("out", base + ".salvaged.clog2");

  const auto file = mpe::salvage(base);
  // Definitions and the "salvaged" marker alone are not a trace: an empty or
  // fully-torn spill set must fail loudly, not hand the user a hollow file.
  const std::size_t instances =
      file.count<clog2::EventRec>() + file.count<clog2::MsgRec>();
  if (instances == 0) {
    std::fprintf(stderr, "error: %s: no salvageable records\n", base.c_str());
    return 1;
  }
  clog2::write_file(out, file);
  std::printf("salvaged %zu record(s) from %d rank(s) -> %s\n",
              file.records.size(), file.nranks, out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-replayprint: dump and validate .prl replay logs (from -pirecord=).
//
// Prints every recorded nondeterministic decision per rank in program
// order. A corrupt or truncated file is reported on stderr and exits 1,
// matching pilot-clog2print / pilot-slog2print.
//
// Exit status: 0 = ok, 1 = unreadable/corrupt input, 2 = bad usage.
#include <cstdio>
#include <exception>

#include "replay/prl.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <replay.prl>\n"
                 "exit status: 0 ok, 1 unreadable input, 2 usage error\n",
                 args.program().c_str());
    return 2;
  }
  for (const auto& key : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
    return 2;
  }

  const std::string& path = args.positional()[0];
  replay::Log log;
  try {
    log = replay::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::fputs(replay::to_text(log).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

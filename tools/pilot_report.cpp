// pilot-report: one self-contained HTML page per trace — full timeline,
// duration-statistics picture, legend table, and conversion diagnostics.
// The artifact an instructor can drop on a course page (the paper's lesson:
// students need the log's value demonstrated to adopt the tool).
#include <cmath>
#include <cstdio>
#include <exception>
#include <string>

#include "jumpshot/render.hpp"
#include "jumpshot/stats.hpp"
#include "util/cli.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace {

std::string html_escape(const std::string& s) { return util::xml_escape(s); }

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <trace.slog2> [--out=report.html] [--title=TEXT]\n"
                 "       [--t0=S] [--t1=S] [--width=PX]\n",
                 args.program().c_str());
    return 2;
  }
  const auto file = slog2::read_file(args.positional()[0]);
  const std::string out = args.get_or("out", "report.html");
  const std::string title = args.get_or("title", args.positional()[0]);

  jumpshot::RenderOptions ropts;
  ropts.t0 = args.get_double_or("t0", ropts.t0);
  ropts.t1 = args.get_double_or("t1", ropts.t1);
  ropts.width = static_cast<int>(args.get_int_or("width", 1200));
  ropts.title = title;
  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }

  jumpshot::StatsRenderOptions sopts;
  sopts.t0 = ropts.t0;
  sopts.t1 = ropts.t1;
  sopts.width = ropts.width;
  sopts.title = title + " — duration statistics";

  const auto entries = jumpshot::legend(file, jumpshot::LegendSort::kByInclusive);

  std::string html;
  html += "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n";
  html += "<title>" + html_escape(title) + "</title>\n";
  html +=
      "<style>body{font-family:sans-serif;background:#18181d;color:#ddd;"
      "margin:2em} h1,h2{font-weight:normal} table{border-collapse:collapse;"
      "font-family:monospace} td,th{padding:2px 12px;text-align:right;"
      "border-bottom:1px solid #333} td:first-child,th:first-child"
      "{text-align:left} .warn{color:#e6a23c}</style></head><body>\n";
  html += "<h1>" + html_escape(title) + "</h1>\n";
  html += util::strprintf(
      "<p>%d timelines, span %s; %llu states, %llu events, %llu message "
      "arrows in %llu frames (depth %d).</p>\n",
      file.nranks, util::human_seconds(file.t_max - file.t_min).c_str(),
      static_cast<unsigned long long>(file.stats.total_states),
      static_cast<unsigned long long>(file.stats.total_events),
      static_cast<unsigned long long>(file.stats.total_arrows),
      static_cast<unsigned long long>(file.stats.frames), file.stats.tree_depth);
  if (!file.stats.clean()) {
    html += util::strprintf(
        "<p class='warn'>conversion diagnostics: %llu unmatched sends, %llu "
        "unmatched receives, %llu unmatched state ends, %llu unclosed states, "
        "%llu Equal Drawables, %llu unknown event ids.</p>\n",
        static_cast<unsigned long long>(file.stats.unmatched_sends),
        static_cast<unsigned long long>(file.stats.unmatched_recvs),
        static_cast<unsigned long long>(file.stats.unmatched_state_ends),
        static_cast<unsigned long long>(file.stats.unclosed_states),
        static_cast<unsigned long long>(file.stats.equal_drawables),
        static_cast<unsigned long long>(file.stats.unknown_event_ids));
  }

  html += "<h2>Timeline</h2>\n" + jumpshot::render_svg(file, ropts) + "\n";
  html += "<h2>Duration statistics</h2>\n" + jumpshot::render_stats_svg(file, sopts) +
          "\n";

  html += "<h2>Legend</h2>\n<table><tr><th>name</th><th>kind</th><th>count</th>"
          "<th>inclusive</th><th>exclusive</th></tr>\n";
  for (const auto& e : entries) {
    const char* kind = e.category.kind == slog2::CategoryKind::kState   ? "state"
                       : e.category.kind == slog2::CategoryKind::kEvent ? "event"
                                                                        : "arrow";
    html += util::strprintf(
        "<tr><td>%s</td><td>%s</td><td>%llu</td><td>%s</td><td>%s</td></tr>\n",
        html_escape(e.category.name).c_str(), kind,
        static_cast<unsigned long long>(e.count),
        util::human_seconds(e.inclusive).c_str(),
        util::human_seconds(e.exclusive).c_str());
  }
  html += "</table>\n</body></html>\n";

  util::write_file(out, html);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-slog2print: structural summary (and optional full drawable dump) of
// an SLOG-2 file.
#include <cstdio>
#include <exception>

#include "slog2/slog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr, "usage: %s <trace.slog2> [--drawables]\n",
                 args.program().c_str());
    return 2;
  }
  const bool drawables = args.has("drawables");
  const std::string& path = args.positional()[0];
  try {
    // Streams frame by frame (RSS stays at window + directory + one frame);
    // the validation pass rejects corrupt files before any output.
    slog2::stream_text(path, drawables, [](const std::string& chunk) {
      std::fputs(chunk.c_str(), stdout);
    });
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-slog2print: structural summary (and optional full drawable dump) of
// an SLOG-2 file.
#include <cstdio>
#include <exception>

#include "slog2/slog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <trace.slog2> [--drawables] "
                 "[--frame-encoding=v1|v2]\n",
                 args.program().c_str());
    return 2;
  }
  const bool drawables = args.has("drawables");
  const std::string& path = args.positional()[0];
  slog2::ReadOptions ro;
  // Pin the expected frame encoding: a file using any other encoding is
  // rejected with a named diagnostic instead of being decoded.
  if (args.has("frame-encoding"))
    ro.require_encoding =
        slog2::parse_frame_encoding(args.get_or("frame-encoding", "v1"));
  try {
    // Streams frame by frame (RSS stays at window + directory + one frame);
    // the validation pass rejects corrupt files before any output.
    slog2::stream_text(
        path, drawables,
        [](const std::string& chunk) { std::fputs(chunk.c_str(), stdout); },
        ro);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-slog2print: structural summary (and optional full drawable dump) of
// an SLOG-2 file.
#include <cstdio>
#include <exception>

#include "slog2/slog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr, "usage: %s <trace.slog2> [--drawables]\n",
                 args.program().c_str());
    return 2;
  }
  const bool drawables = args.has("drawables");
  const std::string& path = args.positional()[0];
  slog2::File file;
  try {
    file = slog2::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::fputs(slog2::to_text(file, drawables).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-tracecheck: offline happens-before checker for CLOG-2 traces.
//
// Loads a trace (including salvaged ones from -pirobust spills), rebuilds
// the causal order with per-rank vector clocks, and prints the TCxxx
// diagnostics from docs/ANALYZE.md: unmatched messages, wildcard-receive
// races, serialized fan-in (Instance A), majority-idle stalls (Instance B),
// wait-for cycles from -pisvc=a "Wait" events, and per-state interval
// anomalies.
//
// Exit status: 0 = clean, 1 = findings (warnings or errors), 2 = bad usage
// or unreadable input.
#include <cstdio>
#include <exception>

#include "analyze/tracecheck.hpp"
#include "replay/crosscheck.hpp"
#include "replay/prl.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <trace.clog2> [--json] [--replay=FILE.prl]\n"
                 "           [--stall-fraction=F] [--min-stall=SECONDS] "
                 "[--min-rounds=N] [--threads=N]\n"
                 "--threads=N uses N workers (0 = hardware); the verdict is\n"
                 "identical at any value.\n"
                 "--replay cross-checks the trace against a .prl replay log\n"
                 "(RP20-RP22 findings on disagreement).\n"
                 "exit status: 0 clean, 1 findings, 2 usage/input error\n",
                 args.program().c_str());
    return 2;
  }

  analyze::TraceCheckOptions opts;
  opts.stall_fraction = args.get_double_or("stall-fraction", opts.stall_fraction);
  opts.min_stall_seconds = args.get_double_or("min-stall", opts.min_stall_seconds);
  opts.min_serialized_rounds = static_cast<int>(
      args.get_int_or("min-rounds", opts.min_serialized_rounds));
  opts.threads = util::parse_threads(args);
  const bool json = args.has("json");
  const std::string replay_path = args.get_or("replay", "");
  for (const auto& key : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
    return 2;
  }

  const std::string& path = args.positional()[0];
  clog2::File file;
  try {
    file = clog2::read_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  analyze::Report rep = analyze::check_trace(file, opts);
  if (!replay_path.empty()) {
    replay::Log log;
    try {
      log = replay::read_file(replay_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", replay_path.c_str(), e.what());
      return 2;
    }
    rep.merge(replay::cross_check(file, log));
  }
  if (json) {
    const char* verdict = rep.count(analyze::Severity::kError) > 0 ? "error"
                          : rep.finding_count() > 0                ? "suspicious"
                                                                   : "clean";
    std::fprintf(stdout, "%s\n",
                 analyze::to_json_report(rep, "pilot-tracecheck", path, verdict)
                     .c_str());
  } else {
    std::fputs(rep.to_text().c_str(), stdout);
    std::fprintf(stdout, "%zu finding(s) in %s (%zu error(s), %zu warning(s))\n",
                 rep.finding_count(), path.c_str(),
                 rep.count(analyze::Severity::kError),
                 rep.count(analyze::Severity::kWarning));
  }
  return rep.finding_count() > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

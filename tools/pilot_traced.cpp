// pilot-traced: streaming trace ingest service.
//
// Listens on an AF_UNIX socket for the newline-delimited JSON protocol
// (docs/TRACED.md): clients open sessions, feed CLOG-2 bytes, run windowed
// renders and rollup queries against the still-running conversion, and
// finalize sessions into SLOG-2 files byte-identical to the offline
// pilot-clog2toslog2 output. --ingest attaches FIFO/file sources directly,
// so `pilot-tracegen --stream > fifo` (or a real run's log writer) needs
// no protocol client at all.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "slog2/slog2.hpp"
#include "traced/service.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace {

std::vector<traced::FifoIngest> parse_ingests(const std::string& spec) {
  // NAME:PATH[,NAME:PATH...]
  std::vector<traced::FifoIngest> out;
  for (const std::string& part : util::split(spec, ',')) {
    if (part.empty()) continue;
    const auto colon = part.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == part.size())
      throw util::UsageError("--ingest expects NAME:PATH, got '" + part + "'");
    traced::FifoIngest fi;
    fi.session = part.substr(0, colon);
    fi.path = part.substr(colon + 1);
    out.push_back(std::move(fi));
  }
  return out;
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.has("help") || !args.has("socket")) {
    std::fprintf(
        stderr,
        "usage: %s --socket=PATH [--workers=N] [--ttl=SECONDS]\n"
        "       [--spill-dir=DIR] [--framesize=BYTES] [--maxdepth=N]\n"
        "       [--threads=N] [--seal=BYTES] [--disorder=SECONDS]\n"
        "       [--frame-encoding=v1|v2] [--max-sessions=N]\n"
        "       [--ingest=NAME:PATH[,NAME:PATH...]] [--quiet]\n"
        "  Serves the pilot-traced NDJSON protocol on an AF_UNIX socket.\n"
        "  --ingest attaches FIFO or file sources as named sessions.\n",
        args.program().c_str());
    return 2;
  }

  traced::ServiceOptions opts;
  const std::string socket_path = args.get_or("socket", "");
  opts.workers = static_cast<std::size_t>(args.get_int_or("workers", 4));
  opts.ttl = args.get_double_or("ttl", opts.ttl);
  opts.max_sessions =
      static_cast<std::size_t>(args.get_int_or("max-sessions", 64));
  opts.online.convert.frame_size = static_cast<std::uint64_t>(
      args.get_int_or("framesize",
                      static_cast<std::int64_t>(opts.online.convert.frame_size)));
  opts.online.convert.max_depth =
      static_cast<int>(args.get_int_or("maxdepth", opts.online.convert.max_depth));
  opts.online.convert.threads =
      static_cast<int>(args.get_int_or("threads", opts.online.convert.threads));
  opts.online.seal_bytes = static_cast<std::uint64_t>(
      args.get_int_or("seal", static_cast<std::int64_t>(opts.online.seal_bytes)));
  opts.online.max_disorder = args.get_double_or("disorder", opts.online.max_disorder);
  opts.online.convert.encoding =
      slog2::parse_frame_encoding(args.get_or("frame-encoding", "v1"));
  opts.online.spill_dir = args.get_or("spill-dir", "");
  const bool quiet = args.has("quiet");
  const std::string ingest_spec = args.get_or("ingest", "");
  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }

  const std::vector<traced::FifoIngest> fifos = parse_ingests(ingest_spec);
  traced::Service service(opts);
  service.set_logger([&](const std::string& msg) {
    if (!quiet) {
      std::printf("pilot-traced: %s\n", msg.c_str());
      std::fflush(stdout);
    }
  });
  util::UnixListener listener((std::filesystem::path(socket_path)));

  // Idle-session sweeper; granularity ttl/4, clamped to [0.5s, 30s].
  std::thread sweeper([&service] {
    const double ttl = service.options().ttl;
    const auto period = std::chrono::duration<double>(
        std::min(30.0, std::max(0.5, ttl / 4.0)));
    while (!service.shutdown_requested()) {
      std::this_thread::sleep_for(period);
      service.sessions().evict_idle(service.now(), ttl);
    }
  });

  if (!quiet) {
    std::printf("pilot-traced listening on %s (%zu workers, ttl %.0fs)\n",
                socket_path.c_str(), service.options().workers,
                service.options().ttl);
    std::fflush(stdout);
  }
  traced::serve(service, listener, fifos, [&](const std::string& msg) {
    if (!quiet) {
      std::printf("pilot-traced: %s\n", msg.c_str());
      std::fflush(stdout);
    }
  });
  sweeper.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

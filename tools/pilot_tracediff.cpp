// pilot-tracediff: cross-run CLOG-2 trace differ and fault localizer.
//
// Aligns one or more suspect traces against a reference run of the same
// program (same .prl, same seed — e.g. a faulted replay against its
// fault-free twin, or seed-swept runs against each other), reports the
// first divergent event with rank and source-line context, computes
// per-rank behavioral deltas (message-edge counts, send-latency inflation,
// state-duration skew), and emits a ranked suspect-process list. See
// docs/TRACEDIFF.md for the TD1xx-TD3xx catalogue.
//
// Exit status: 0 = no divergence, 1 = divergence found, 2 = bad usage or
// unreadable input.
#include <cstdio>
#include <exception>

#include "analyze/tracediff.hpp"
#include "clog2/clog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() < 2 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <reference.clog2> <suspect.clog2> [more.clog2...]\n"
                 "           [--json] [--top=N] [--min-latency=SECONDS]\n"
                 "           [--latency-ratio=R] [--min-duration=SECONDS]\n"
                 "           [--duration-ratio=R] [--threads=N]\n"
                 "diffs each suspect trace against the reference and ranks\n"
                 "the processes most likely to have caused the divergence.\n"
                 "exit status: 0 identical, 1 divergence, 2 usage/input error\n",
                 args.program().c_str());
    return 2;
  }

  analyze::TraceDiffOptions opts;
  opts.min_latency_delta = args.get_double_or("min-latency", opts.min_latency_delta);
  opts.latency_ratio = args.get_double_or("latency-ratio", opts.latency_ratio);
  opts.min_duration_delta =
      args.get_double_or("min-duration", opts.min_duration_delta);
  opts.duration_ratio = args.get_double_or("duration-ratio", opts.duration_ratio);
  opts.top_suspects = static_cast<int>(args.get_int_or("top", opts.top_suspects));
  opts.threads = util::parse_threads(args);
  const bool json = args.has("json");
  for (const auto& key : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", key.c_str());
    return 2;
  }

  const std::string& ref_path = args.positional()[0];
  clog2::File reference;
  try {
    reference = clog2::read_file(ref_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", ref_path.c_str(), e.what());
    return 2;
  }

  bool any_divergence = false;
  const bool multi = args.positional().size() > 2;
  for (std::size_t i = 1; i < args.positional().size(); ++i) {
    const std::string& sus_path = args.positional()[i];
    clog2::File suspect;
    try {
      suspect = clog2::read_file(sus_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", sus_path.c_str(), e.what());
      return 2;
    }

    const analyze::TraceDiffResult res =
        analyze::diff_traces(reference, suspect, opts);
    any_divergence = any_divergence || res.diverged();

    const char* verdict = !res.comparable          ? "incomparable"
                          : res.structural_diverged ? "structural-divergence"
                          : res.timing_diverged     ? "timing-divergence"
                                                    : "identical";
    if (json) {
      std::fprintf(stdout, "%s\n",
                   analyze::to_json_report(res.report, "pilot-tracediff",
                                           sus_path, verdict)
                       .c_str());
    } else {
      if (multi)
        std::fprintf(stdout, "== %s vs %s ==\n", sus_path.c_str(),
                     ref_path.c_str());
      std::fputs(res.report.to_text().c_str(), stdout);
      std::fprintf(stdout, "%s: %s (%zu finding(s))\n", sus_path.c_str(),
                   verdict, res.report.finding_count());
    }
  }
  return any_divergence ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

// pilot-tracedigest: budgeted summary of an SLOG-2 trace. Where
// pilot-slog2print dumps structure proportional to the trace,
// pilot-tracedigest answers "what happened?" in at most --budget bytes:
// SPMD ranks with identical behavior collapse to one motif line, and
// stragglers / slow edges are scored and surfaced first. Reads v1 and v2
// frame encodings transparently.
#include <cstdio>
#include <exception>
#include <string>

#include "digest/digest.hpp"
#include "slog2/slog2.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <trace.slog2> [--budget=BYTES] [--seed=N] "
                 "[--json] [--t0=T] [--t1=T] [--threads=N]\n"
                 "  Prints a summary guaranteed to fit in --budget bytes "
                 "(default 4096).\n",
                 args.program().c_str());
    return 2;
  }
  digest::Options opts;
  opts.budget = static_cast<std::size_t>(args.get_int_or("budget", 4096));
  opts.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 0));
  opts.json = args.has("json");
  opts.t0 = args.get_double_or("t0", opts.t0);
  opts.t1 = args.get_double_or("t1", opts.t1);
  opts.threads = util::parse_threads(args);
  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }

  slog2::Navigator nav{std::filesystem::path(args.positional()[0])};
  const std::string out = digest::summarize(nav, opts);
  std::fwrite(out.data(), 1, out.size(), stdout);
  // The budget guarantee covers the digest itself; the shell-friendly
  // trailing newline for JSON mode is outside it only if room remains.
  if (opts.json && out.size() < opts.budget) std::fputc('\n', stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// pilot-tracegen: seeded synthetic CLOG-2 generator. Produces traces far
// larger than the mpisim workloads can log in test time (10^5..10^7
// instances), for scaling benches and multi-thread determinism checks.
//
// --stream[=RATE] switches from write-a-file to emit-a-stream: the same
// bytes go to stdout (out path "-") or are appended to any writable path —
// typically a FIFO feeding pilot-traced. RATE paces the emission at
// approximately that many records per second so tests and demos can watch
// a session fill up; the byte sequence is identical to file mode at every
// rate.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "tracegen/tracegen.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

void emit_stream(const std::string& out, const std::vector<std::uint8_t>& bytes,
                 std::size_t nrecords, double rate) {
  std::FILE* f = nullptr;
  const bool to_stdout = out == "-";
  if (to_stdout) {
    f = stdout;
  } else {
    // "a"ppend keeps a FIFO's write-end semantics simple and still creates
    // regular files from scratch.
    f = std::fopen(out.c_str(), "ab");
    if (f == nullptr) throw util::IoError("cannot open stream target " + out);
  }
  // Pace by slicing the byte stream into ~20ms quanta at the average
  // record size, so RATE records/second holds without per-record framing
  // (the bytes stay identical to file mode by construction).
  std::size_t chunk = bytes.size();
  std::chrono::duration<double> pause{0.0};
  if (rate > 0.0 && nrecords > 0) {
    const double bytes_per_sec =
        rate * static_cast<double>(bytes.size()) / static_cast<double>(nrecords);
    chunk = static_cast<std::size_t>(bytes_per_sec * 0.02);
    if (chunk == 0) chunk = 1;
    pause = std::chrono::duration<double>(static_cast<double>(chunk) / bytes_per_sec);
  }
  if (chunk == 0) chunk = 1;  // empty-trace guard for the loop below
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    if (std::fwrite(bytes.data() + off, 1, n, f) != n)
      throw util::IoError("short write to " + out);
    std::fflush(f);
    if (pause.count() > 0.0 && off + n < bytes.size())
      std::this_thread::sleep_for(pause);
  }
  if (!to_stdout) std::fclose(f);
}

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <out.clog2|-> [--events=N] [--ranks=N] [--seed=S]\n"
                 "       [--arrows=FRACTION] [--solo=FRACTION] [--states=N]\n"
                 "       [--depth=N] [--stream[=RATE]] [--quiet]\n"
                 "  --stream writes the CLOG-2 byte stream to the target path\n"
                 "  (or stdout for \"-\") instead of creating a file; RATE\n"
                 "  paces it at about that many records per second.\n",
                 args.program().c_str());
    return 2;
  }
  tracegen::Options opts;
  opts.events = static_cast<std::uint64_t>(args.get_int_or("events", 100000));
  const long long ranks = args.get_int_or("ranks", 8);
  if (ranks < 1 || ranks > tracegen::kMaxRanks) {
    std::fprintf(stderr, "error: --ranks must be in 1..%d (got %lld)\n",
                 tracegen::kMaxRanks, ranks);
    return 2;
  }
  opts.nranks = static_cast<std::int32_t>(ranks);
  opts.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  opts.arrow_fraction = args.get_double_or("arrows", opts.arrow_fraction);
  opts.solo_fraction = args.get_double_or("solo", opts.solo_fraction);
  opts.state_categories = static_cast<int>(
      args.get_int_or("states", opts.state_categories));
  opts.max_depth = static_cast<int>(args.get_int_or("depth", opts.max_depth));
  const bool quiet = args.has("quiet");
  const bool stream = args.has("stream");
  double rate = 0.0;
  if (stream) {
    const std::string rate_text = args.get_or("stream", "");
    if (!rate_text.empty() && rate_text != "true") {  // bare --stream = unpaced
      rate = std::strtod(rate_text.c_str(), nullptr);
      if (rate <= 0.0) {
        std::fprintf(stderr, "error: --stream rate must be positive (got %s)\n",
                     rate_text.c_str());
        return 2;
      }
    }
  }
  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }

  const auto file = tracegen::generate(opts);
  if (stream) {
    emit_stream(args.positional()[0], clog2::serialize(file), file.records.size(),
                rate);
    if (!quiet)
      std::fprintf(stderr, "streamed %zu records (%d ranks, seed %llu) to %s\n",
                   file.records.size(), file.nranks,
                   static_cast<unsigned long long>(opts.seed),
                   args.positional()[0].c_str());
    return 0;
  }
  if (args.positional()[0] == "-") {
    std::fprintf(stderr, "error: \"-\" requires --stream\n");
    return 2;
  }
  clog2::write_file(args.positional()[0], file);
  if (!quiet)
    std::printf("wrote %s (%zu records, %d ranks, seed %llu)\n",
                args.positional()[0].c_str(), file.records.size(), file.nranks,
                static_cast<unsigned long long>(opts.seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

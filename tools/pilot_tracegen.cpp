// pilot-tracegen: seeded synthetic CLOG-2 generator. Produces traces far
// larger than the mpisim workloads can log in test time (10^5..10^7
// instances), for scaling benches and multi-thread determinism checks.
#include <cstdio>
#include <exception>
#include <string>

#include "tracegen/tracegen.hpp"
#include "util/cli.hpp"

namespace {

int run(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  if (args.positional().size() != 1 || args.has("help")) {
    std::fprintf(stderr,
                 "usage: %s <out.clog2> [--events=N] [--ranks=N] [--seed=S]\n"
                 "       [--arrows=FRACTION] [--solo=FRACTION] [--states=N]\n"
                 "       [--depth=N] [--quiet]\n",
                 args.program().c_str());
    return 2;
  }
  tracegen::Options opts;
  opts.events = static_cast<std::uint64_t>(args.get_int_or("events", 100000));
  const long long ranks = args.get_int_or("ranks", 8);
  if (ranks < 1 || ranks > tracegen::kMaxRanks) {
    std::fprintf(stderr, "error: --ranks must be in 1..%d (got %lld)\n",
                 tracegen::kMaxRanks, ranks);
    return 2;
  }
  opts.nranks = static_cast<std::int32_t>(ranks);
  opts.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  opts.arrow_fraction = args.get_double_or("arrows", opts.arrow_fraction);
  opts.solo_fraction = args.get_double_or("solo", opts.solo_fraction);
  opts.state_categories = static_cast<int>(
      args.get_int_or("states", opts.state_categories));
  opts.max_depth = static_cast<int>(args.get_int_or("depth", opts.max_depth));
  const bool quiet = args.has("quiet");
  for (const auto& k : args.unused_keys()) {
    std::fprintf(stderr, "error: unknown option --%s\n", k.c_str());
    return 2;
  }

  const auto file = tracegen::generate(opts);
  clog2::write_file(args.positional()[0], file);
  if (!quiet)
    std::printf("wrote %s (%zu records, %d ranks, seed %llu)\n",
                args.positional()[0].c_str(), file.records.size(), file.nranks,
                static_cast<unsigned long long>(opts.seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
